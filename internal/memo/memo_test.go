package memo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesAndCounts(t *testing.T) {
	c := New(10)
	calls := 0
	f := func() any { calls++; return 42 }
	if v := c.Do("k", f); v.(int) != 42 {
		t.Fatalf("Do = %v", v)
	}
	if v := c.Do("k", f); v.(int) != 42 {
		t.Fatalf("Do = %v", v)
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(3)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(k, func() any { return i })
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3 (bounded)", st.Entries)
	}
	// Uncached keys still compute correctly.
	if v := c.Do("k9", func() any { return 9 }); v.(int) != 9 {
		t.Errorf("overflow key = %v", v)
	}
}

func TestDisabledBypasses(t *testing.T) {
	c := New(10)
	c.SetEnabled(false)
	calls := 0
	for i := 0; i < 3; i++ {
		c.Do("k", func() any { calls++; return 1 })
	}
	if calls != 3 {
		t.Errorf("disabled cache still memoized: %d calls", calls)
	}
	if c.Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
	c.SetEnabled(true)
	c.Do("k", func() any { calls++; return 1 })
	c.Do("k", func() any { calls++; return 1 })
	if calls != 4 {
		t.Errorf("re-enabled cache did not memoize: %d calls", calls)
	}
}

func TestReset(t *testing.T) {
	c := New(10)
	c.Do("k", func() any { return 1 })
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

// TestConcurrentSameKey hammers one key from many goroutines; every
// caller must observe the same canonical value even when computes race.
func TestConcurrentSameKey(t *testing.T) {
	c := New(10)
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := c.Do("shared", func() any { return 7 })
				if v.(int) != 7 {
					mismatches.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if mismatches.Load() != 0 {
		t.Errorf("%d mismatched reads", mismatches.Load())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 16*200 {
		t.Errorf("lost traffic: %+v", st)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(DefaultCap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%d-i%d", g, i%10)
				want := g*1000 + i%10
				v := c.Do(k, func() any { return want })
				if v.(int) != want {
					t.Errorf("key %s = %v, want %d", k, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestKeyCanonical(t *testing.T) {
	a := NewKey('x').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	b := NewKey('x').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	if a != b {
		t.Error("identical inputs gave different keys")
	}
	// Order matters (exact-order keying, not multiset keying).
	cK := NewKey('x').Int(3).Floats([]float64{2, 1}).Float(0.5).String()
	if a == cK {
		t.Error("reordered inputs gave the same key")
	}
	// Op tag namespaces.
	dK := NewKey('y').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	if a == dK {
		t.Error("different op tags gave the same key")
	}
	// -0 vs +0 differ in bits: exactness over float equality.
	e := NewKey('x').Float(0.0).String()
	f := NewKey('x').Float(math_Copysign0()).String()
	if e == f {
		t.Error("+0 and -0 keys collide; keys must be exact bit patterns")
	}
}

func math_Copysign0() float64 {
	z := 0.0
	return -z
}
