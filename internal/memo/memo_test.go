package memo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesAndCounts(t *testing.T) {
	c := New(10)
	calls := 0
	f := func() any { calls++; return 42 }
	if v := c.Do("k", f); v.(int) != 42 {
		t.Fatalf("Do = %v", v)
	}
	if v := c.Do("k", f); v.(int) != 42 {
		t.Fatalf("Do = %v", v)
	}
	if calls != 1 {
		t.Errorf("compute called %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v", got)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(3)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(k, func() any { return i })
	}
	if st := c.Stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3 (bounded)", st.Entries)
	}
	// Uncached keys still compute correctly.
	if v := c.Do("k9", func() any { return 9 }); v.(int) != 9 {
		t.Errorf("overflow key = %v", v)
	}
}

func TestDisabledBypasses(t *testing.T) {
	c := New(10)
	c.SetEnabled(false)
	calls := 0
	for i := 0; i < 3; i++ {
		c.Do("k", func() any { calls++; return 1 })
	}
	if calls != 3 {
		t.Errorf("disabled cache still memoized: %d calls", calls)
	}
	if c.Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
	c.SetEnabled(true)
	c.Do("k", func() any { calls++; return 1 })
	c.Do("k", func() any { calls++; return 1 })
	if calls != 4 {
		t.Errorf("re-enabled cache did not memoize: %d calls", calls)
	}
}

func TestReset(t *testing.T) {
	c := New(10)
	c.Do("k", func() any { return 1 })
	c.Reset()
	st := c.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

// TestConcurrentSameKey hammers one key from many goroutines; every
// caller must observe the same canonical value even when computes race.
func TestConcurrentSameKey(t *testing.T) {
	c := New(10)
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := c.Do("shared", func() any { return 7 })
				if v.(int) != 7 {
					mismatches.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if mismatches.Load() != 0 {
		t.Errorf("%d mismatched reads", mismatches.Load())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 16*200 {
		t.Errorf("lost traffic: %+v", st)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(DefaultCap)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("g%d-i%d", g, i%10)
				want := g*1000 + i%10
				v := c.Do(k, func() any { return want })
				if v.(int) != want {
					t.Errorf("key %s = %v, want %d", k, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestKeyCanonical(t *testing.T) {
	a := NewKey('x').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	b := NewKey('x').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	if a != b {
		t.Error("identical inputs gave different keys")
	}
	// Order matters (exact-order keying, not multiset keying).
	cK := NewKey('x').Int(3).Floats([]float64{2, 1}).Float(0.5).String()
	if a == cK {
		t.Error("reordered inputs gave the same key")
	}
	// Op tag namespaces.
	dK := NewKey('y').Int(3).Floats([]float64{1, 2}).Float(0.5).String()
	if a == dK {
		t.Error("different op tags gave the same key")
	}
	// -0 vs +0 differ in bits: exactness over float equality.
	e := NewKey('x').Float(0.0).String()
	f := NewKey('x').Float(math_Copysign0()).String()
	if e == f {
		t.Error("+0 and -0 keys collide; keys must be exact bit patterns")
	}
}

func math_Copysign0() float64 {
	z := 0.0
	return -z
}

// TestEvictionHotKeySurvives drives a shard far past capacity while
// keeping one key hot. Second-chance eviction must keep the hot key
// resident (its reference bit is set on every hit) while cold keys
// churn, and Overflow must count the eviction pressure.
func TestEvictionHotKeySurvives(t *testing.T) {
	c := New(8) // single shard (small cap), capacity 8
	hotCalls := 0
	hot := func() any { hotCalls++; return "hot" }
	c.Do("hot", hot)
	for i := 0; i < 100; i++ {
		c.Do(fmt.Sprintf("cold%d", i), func() any { return i })
		// Touch the hot key so its reference bit is set before any sweep
		// reaches it.
		if v := c.Do("hot", hot); v.(string) != "hot" {
			t.Fatalf("hot value = %v", v)
		}
	}
	if hotCalls != 1 {
		t.Errorf("hot key recomputed %d times; second-chance eviction should keep it resident", hotCalls)
	}
	st := c.Stats()
	if st.Overflow == 0 {
		t.Error("Overflow = 0; eviction pressure must still be counted")
	}
	if st.Evictions == 0 {
		t.Error("Evictions = 0 after driving 100 keys through an 8-entry cache")
	}
	if st.Entries > 8 {
		t.Errorf("entries = %d exceeds capacity 8", st.Entries)
	}
}

// TestEvictionColdKeyReplaced confirms a cold key is actually replaced
// (recomputed on re-access) once the cache cycles past capacity.
func TestEvictionColdKeyReplaced(t *testing.T) {
	c := New(4)
	calls := 0
	c.Do("first", func() any { calls++; return 1 })
	for i := 0; i < 50; i++ {
		c.Do(fmt.Sprintf("churn%d", i), func() any { return i })
	}
	c.Do("first", func() any { calls++; return 1 })
	if calls != 2 {
		t.Errorf("cold key computed %d times, want 2 (evicted then recomputed)", calls)
	}
}

// TestShardedCapacitySplit: a large cache splits its capacity exactly
// across shards and still bounds the total entry count.
func TestShardedCapacitySplit(t *testing.T) {
	cap := 130 // not a multiple of the shard count
	c := New(cap)
	if got := c.Stats().Capacity; got != cap {
		t.Fatalf("total capacity = %d, want %d", got, cap)
	}
	for i := 0; i < 10*cap; i++ {
		c.Do(fmt.Sprintf("k%d", i), func() any { return i })
	}
	if st := c.Stats(); st.Entries > cap {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, cap)
	}
}

// TestGetPutCanonical: Put returns the first-inserted value when two
// callers race on the same key, and Get replays it.
func TestGetPutCanonical(t *testing.T) {
	c := New(100)
	k1 := GetKey('z')
	k1.Int(7)
	if _, ok := c.Get(k1); ok {
		t.Fatal("hit before any Put")
	}
	if v := c.Put(k1, "a"); v.(string) != "a" {
		t.Fatalf("first Put = %v", v)
	}
	if v := c.Put(k1, "b"); v.(string) != "a" {
		t.Fatalf("second Put = %v, want canonical first value", v)
	}
	if v, ok := c.Get(k1); !ok || v.(string) != "a" {
		t.Fatalf("Get = %v %v", v, ok)
	}
	k1.Release()
}

// TestDoKeyMatchesDo: DoKey and Do address the same table for the same
// byte key.
func TestDoKeyMatchesDo(t *testing.T) {
	c := New(100)
	k := GetKey('q')
	k.Int(42).Float(1.5)
	calls := 0
	v1 := c.DoKey(k, func() any { calls++; return 99 })
	v2 := c.Do(NewKey('q').Int(42).Float(1.5).String(), func() any { calls++; return 99 })
	k.Release()
	if v1.(int) != 99 || v2.(int) != 99 || calls != 1 {
		t.Errorf("v1=%v v2=%v calls=%d; DoKey and Do must share entries", v1, v2, calls)
	}
}

// TestHitPathZeroAllocs pins the tentpole guarantee: a warm lookup —
// pooled key build, shard hash, map probe, release — performs zero
// heap allocations.
func TestHitPathZeroAllocs(t *testing.T) {
	c := New(1024)
	q := []float64{1.25, -2.5, 3.75}
	warm := GetKey('h')
	warm.Int(3).Floats(q)
	c.Put(warm, true)
	warm.Release()

	allocs := testing.AllocsPerRun(1000, func() {
		k := GetKey('h')
		k.Int(3).Floats(q)
		if _, ok := c.Get(k); !ok {
			t.Fatal("expected hit")
		}
		k.Release()
	})
	if allocs != 0 {
		t.Errorf("hit path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentEviction hammers a small cache from many goroutines
// under the race detector: eviction bookkeeping (ring, hand, map) must
// stay consistent.
func TestConcurrentEviction(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("g%d-%d", g, i%40)
				want := g*1000 + i%40
				if v := c.Do(k, func() any { return want }); v.(int) != want {
					t.Errorf("key %s = %v want %d", k, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 16 {
		t.Errorf("entries %d exceed capacity 16", st.Entries)
	}
}

// BenchmarkHitLookup measures the warm-lookup path; run with
// -benchmem to confirm 0 allocs/op.
func BenchmarkHitLookup(b *testing.B) {
	c := New(1024)
	q := []float64{1, 2, 3, 4}
	k := GetKey('h')
	k.Int(4).Floats(q)
	c.Put(k, 42)
	k.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := GetKey('h')
		k.Int(4).Floats(q)
		if _, ok := c.Get(k); !ok {
			b.Fatal("miss")
		}
		k.Release()
	}
}
