// Package memo provides the concurrency-safe memoization cache behind
// the geometry kernels (geom.InHull, geom.DistP, relax.GammaPoint,
// minimax.DeltaStar2, ...). The hot LP/minimax solves of a consensus
// sweep recur across trials, rounds and processes with bit-identical
// inputs; caching them keyed by the exact binary encoding of the inputs
// is a pure win: a hit returns exactly the value the solver would have
// recomputed, so cached and uncached runs agree bit-for-bit.
//
// Caches are safe for concurrent use by the batch engine's workers and
// by the in-kernel parallel scans. The table is split into power-of-two
// shards selected by an FNV-1a hash of the exact binary key, so workers
// hammering different keys lock different mutexes instead of contending
// on one global table. Two workers may still race to compute the same
// key; both compute the same deterministic value and one insert wins,
// so results never depend on scheduling.
//
// The hot lookup path allocates nothing: keys are assembled in pooled
// builders (GetKey/Release) whose byte arenas are reused, shard
// selection hashes the bytes in place, and the map probe uses the
// compiler's zero-copy []byte->string lookup. Only inserts (misses)
// materialize a key string.
//
// Capacity is bounded per shard. A full shard evicts with a bounded
// second-chance (clock) sweep: entries touched since the last sweep get
// one reprieve, cold entries are replaced. Hot keys therefore survive
// arbitrary pressure, and Stats.Overflow counts every insert that had
// to evict — the pressure signal that the capacity is too small for the
// workload.
package memo

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
)

// maxShards bounds the lock striping; shard counts are powers of two
// so the hash can be masked. 32 shards keep worst-case contention
// negligible at the worker counts the batch engine and kernel scans
// use. Small caches use fewer shards so the per-shard capacity split
// still honors the total bound exactly.
const maxShards = 32

// shardCount picks the largest power of two <= maxShards that keeps
// every shard at least minShardCap entries deep.
func shardCount(cap int) int {
	const minShardCap = 64
	n := 1
	for n*2 <= maxShards && cap/(n*2) >= minShardCap {
		n *= 2
	}
	return n
}

// entry is one cached value plus its second-chance reference bit. The
// bit is set lock-free on hits (readers hold only the shard read lock)
// and cleared by the eviction sweep under the write lock.
type entry struct {
	v   any
	ref atomic.Bool
}

// shard is one lock-striped segment of the table. ring holds the keys
// in insertion order and doubles as the clock for second-chance
// eviction; it always contains exactly the keys of m.
type shard struct {
	mu   sync.RWMutex
	m    map[string]*entry
	ring []string
	hand int
	cap  int
}

// Cache is a bounded concurrent memo table. The zero value is unusable;
// use New.
type Cache struct {
	shards    []shard
	mask      uint64
	enabled   atomic.Bool
	hits      atomic.Int64
	misses    atomic.Int64
	overflow  atomic.Int64
	evictions atomic.Int64
}

// DefaultCap is the total entry bound used by New(0).
const DefaultCap = 1 << 16

// New returns an enabled cache holding at most cap entries in total
// (cap <= 0 means DefaultCap). The capacity is split exactly across the
// shards (the first cap mod shards shards take one extra entry), so the
// sum of shard capacities equals cap.
func New(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCap
	}
	n := shardCount(cap)
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per, extra := cap/n, cap%n
	for i := range c.shards {
		sc := per
		if i < extra {
			sc++
		}
		c.shards[i] = shard{m: make(map[string]*entry), cap: sc}
	}
	c.enabled.Store(true)
	return c
}

// SetEnabled turns the cache on or off. Disabling does not drop stored
// entries; use Reset for that.
func (c *Cache) SetEnabled(on bool) { c.enabled.Store(on) }

// Enabled reports whether lookups consult the cache.
func (c *Cache) Enabled() bool { return c.enabled.Load() }

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, x := range b {
		h ^= uint64(x)
		h *= fnvPrime
	}
	return h
}

func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func (c *Cache) shardFor(h uint64) *shard { return &c.shards[h&c.mask] }

// Get returns the cached value for the key accumulated in k. It is the
// zero-allocation hot path: the key bytes are hashed and probed in
// place, and a hit only flips the entry's reference bit. Get does not
// consume k; the caller still owns (and should Release) it.
func (c *Cache) Get(k *Key) (any, bool) {
	if !c.enabled.Load() {
		return nil, false
	}
	s := c.shardFor(fnvBytes(k.b))
	s.mu.RLock()
	e, ok := s.m[string(k.b)]
	s.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e.ref.Store(true)
	c.hits.Add(1)
	return e.v, true
}

// Put stores v under k's key and returns the canonical value: v itself,
// or the previously stored value if a concurrent worker inserted the
// same key first (so all readers observe one entry). Put materializes
// the key string (one allocation); it is only reached on misses. The
// caller still owns k.
func (c *Cache) Put(k *Key, v any) any {
	if !c.enabled.Load() {
		return v
	}
	s := c.shardFor(fnvBytes(k.b))
	s.mu.Lock()
	if prev, ok := s.m[string(k.b)]; ok {
		v = prev.v
		s.mu.Unlock()
		return v
	}
	s.insertLocked(string(k.b), v, c)
	s.mu.Unlock()
	return v
}

// insertLocked stores (key, v), evicting one cold entry when the shard
// is full. Called with s.mu held for writing.
func (s *shard) insertLocked(key string, v any, c *Cache) {
	e := &entry{v: v}
	if len(s.m) < s.cap {
		s.m[key] = e
		s.ring = append(s.ring, key)
		return
	}
	// Second-chance sweep: every entry gets at most one reprieve per
	// sweep, so the loop terminates within 2*len(ring) steps.
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		victim := s.ring[s.hand]
		ve := s.m[victim]
		if ve.ref.Load() {
			ve.ref.Store(false)
			s.hand++
			continue
		}
		delete(s.m, victim)
		s.m[key] = e
		s.ring[s.hand] = key
		s.hand++
		c.overflow.Add(1)
		c.evictions.Add(1)
		return
	}
}

// Do returns the cached value for key, computing and storing it on a
// miss (evicting a cold entry under capacity pressure). compute must be
// deterministic in key: every call with the same key must return an
// equal value. Do is the string-keyed path; hot call sites use
// GetKey/Get/Put to avoid the closure and key allocations.
func (c *Cache) Do(key string, compute func() any) any {
	if !c.enabled.Load() {
		return compute()
	}
	s := c.shardFor(fnvString(key))
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		e.ref.Store(true)
		c.hits.Add(1)
		return e.v
	}
	c.misses.Add(1)
	v := compute()
	s.mu.Lock()
	if prev, ok := s.m[key]; ok {
		v = prev.v
	} else {
		s.insertLocked(key, v, c)
	}
	s.mu.Unlock()
	return v
}

// DoKey is Do for a pooled key builder: zero-allocation on hits, one
// key-string allocation on misses. The caller still owns k.
func (c *Cache) DoKey(k *Key, compute func() any) any {
	if !c.enabled.Load() {
		return compute()
	}
	if v, ok := c.Get(k); ok {
		return v
	}
	return c.Put(k, compute())
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits, Misses int64
	// Overflow counts values that could only be stored by evicting a
	// colder entry (the capacity-pressure signal; before eviction
	// existed it counted values dropped at capacity).
	Overflow int64
	// Evictions counts entries removed by the second-chance sweep.
	Evictions int64
	Entries   int
	Capacity  int
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// entries sums the shard table sizes.
func (c *Cache) entries() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	capTotal := 0
	for i := range c.shards {
		capTotal += c.shards[i].cap
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Overflow:  c.overflow.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries(),
		Capacity:  capTotal,
	}
}

// Reset drops all entries and zeroes the counters.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*entry)
		s.ring = s.ring[:0]
		s.hand = 0
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.overflow.Store(0)
	c.evictions.Store(0)
}

// RegisterMetrics publishes the cache's counters into the default
// metrics registry as read callbacks named
// <prefix>_cache_{hits,misses,overflow,evictions}_total and
// <prefix>_cache_entries. The counters are cumulative (reset only via
// Reset); entries reports the current table size, so its
// per-experiment diff is entry growth.
func (c *Cache) RegisterMetrics(prefix string) {
	metrics.RegisterFunc(prefix+"_cache_hits_total", c.hits.Load)
	metrics.RegisterFunc(prefix+"_cache_misses_total", c.misses.Load)
	metrics.RegisterFunc(prefix+"_cache_overflow_total", c.overflow.Load)
	metrics.RegisterFunc(prefix+"_cache_evictions_total", c.evictions.Load)
	metrics.RegisterFunc(prefix+"_cache_entries", func() int64 {
		return int64(c.entries())
	})
}

// Key builds canonical binary cache keys. It preserves input order and
// exact float bits, so two keys are equal iff the inputs are
// bit-identical in the same order — the property that makes cached and
// uncached results indistinguishable.
type Key struct{ b []byte }

// keyPool recycles Key arenas so steady-state key building allocates
// nothing. Oversized arenas (beyond maxPooledKey) are dropped rather
// than pinned in the pool. Gets-vs-news is the arena-reuse signal of
// the memoization layer: in steady state news stays flat while gets
// climbs (see memo_key_pool_{gets,news}_total in the metrics registry).
var keyPool = sync.Pool{New: func() any {
	keyPoolNews.Inc()
	return &Key{b: make([]byte, 0, 512)}
}}

var (
	keyPoolGets = metrics.DefaultCounter("memo_key_pool_gets_total")
	keyPoolNews = metrics.DefaultCounter("memo_key_pool_news_total")
)

const maxPooledKey = 1 << 16

// GetKey returns a pooled key builder primed with an operation tag
// namespacing the cache line. Release it after the lookup completes.
func GetKey(op byte) *Key {
	keyPoolGets.Inc()
	k := keyPool.Get().(*Key)
	k.b = append(k.b[:0], op)
	return k
}

// Release returns k to the builder pool. The key's bytes must not be
// used after Release.
func (k *Key) Release() {
	if cap(k.b) <= maxPooledKey {
		keyPool.Put(k)
	}
}

// NewKey starts a fresh (unpooled) key with an operation tag. Prefer
// GetKey/Release on hot paths.
func NewKey(op byte) *Key { return &Key{b: []byte{op}} }

// Int appends an integer.
func (k *Key) Int(v int) *Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	k.b = append(k.b, buf[:]...)
	return k
}

// Float appends the exact bit pattern of a float64.
func (k *Key) Float(v float64) *Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	k.b = append(k.b, buf[:]...)
	return k
}

// Floats appends a slice of float64 values (length-prefixed).
func (k *Key) Floats(vs []float64) *Key {
	k.Int(len(vs))
	for _, v := range vs {
		k.Float(v)
	}
	return k
}

// String returns the accumulated key.
func (k *Key) String() string { return string(k.b) }
