// Package memo provides the concurrency-safe memoization cache behind
// the geometry kernels (geom.InHull, geom.DistP, relax.GammaPoint,
// minimax.DeltaStar2, ...). The hot LP/minimax solves of a consensus
// sweep recur across trials, rounds and processes with bit-identical
// inputs; caching them keyed by the exact binary encoding of the inputs
// is a pure win: a hit returns exactly the value the solver would have
// recomputed, so cached and uncached runs agree bit-for-bit.
//
// Caches are safe for concurrent use by the batch engine's workers. Two
// workers may race to compute the same key; both compute the same
// deterministic value and one insert wins, so results never depend on
// scheduling. Capacity is bounded: once full, new keys are computed but
// not stored (no eviction scans on the hot path).
package memo

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"relaxedbvc/internal/metrics"
)

// Cache is a bounded concurrent memo table. The zero value is unusable;
// use New.
type Cache struct {
	mu       sync.RWMutex
	m        map[string]any
	cap      int
	enabled  atomic.Bool
	hits     atomic.Int64
	misses   atomic.Int64
	overflow atomic.Int64
}

// DefaultCap is the per-cache entry bound used by New(0).
const DefaultCap = 1 << 16

// New returns an enabled cache holding at most cap entries (cap <= 0
// means DefaultCap).
func New(cap int) *Cache {
	if cap <= 0 {
		cap = DefaultCap
	}
	c := &Cache{m: make(map[string]any), cap: cap}
	c.enabled.Store(true)
	return c
}

// SetEnabled turns the cache on or off. Disabling does not drop stored
// entries; use Reset for that.
func (c *Cache) SetEnabled(on bool) { c.enabled.Store(on) }

// Enabled reports whether lookups consult the cache.
func (c *Cache) Enabled() bool { return c.enabled.Load() }

// Do returns the cached value for key, computing and (capacity
// permitting) storing it on a miss. compute must be deterministic in
// key: every call with the same key must return an equal value.
func (c *Cache) Do(key string, compute func() any) any {
	if !c.enabled.Load() {
		return compute()
	}
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	v = compute()
	c.mu.Lock()
	if prev, ok := c.m[key]; ok {
		// A concurrent worker beat us to the insert; keep its value so
		// all readers observe one canonical entry.
		v = prev
	} else if len(c.m) < c.cap {
		c.m[key] = v
	} else {
		// Full: the value was computed but cannot be stored. This is the
		// design's stand-in for eviction pressure; a climbing overflow
		// count means the capacity is too small for the workload.
		c.overflow.Add(1)
	}
	c.mu.Unlock()
	return v
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits, Misses int64
	// Overflow counts values computed but not stored because the cache
	// was at capacity (the no-eviction design's pressure signal).
	Overflow int64
	Entries  int
	Capacity int
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Overflow: c.overflow.Load(), Entries: n, Capacity: c.cap}
}

// Reset drops all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = make(map[string]any)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.overflow.Store(0)
}

// RegisterMetrics publishes the cache's counters into the default
// metrics registry as read callbacks named
// <prefix>_cache_{hits,misses,overflow}_total and <prefix>_cache_entries.
// The first three are cumulative (reset only via Reset); entries reports
// the current table size, so its per-experiment diff is entry growth.
func (c *Cache) RegisterMetrics(prefix string) {
	metrics.RegisterFunc(prefix+"_cache_hits_total", c.hits.Load)
	metrics.RegisterFunc(prefix+"_cache_misses_total", c.misses.Load)
	metrics.RegisterFunc(prefix+"_cache_overflow_total", c.overflow.Load)
	metrics.RegisterFunc(prefix+"_cache_entries", func() int64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return int64(len(c.m))
	})
}

// Key builds canonical binary cache keys. It preserves input order and
// exact float bits, so two keys are equal iff the inputs are
// bit-identical in the same order — the property that makes cached and
// uncached results indistinguishable.
type Key struct{ b []byte }

// NewKey starts a key with an operation tag namespacing the cache line.
func NewKey(op byte) *Key { return &Key{b: []byte{op}} }

// Int appends an integer.
func (k *Key) Int(v int) *Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	k.b = append(k.b, buf[:]...)
	return k
}

// Float appends the exact bit pattern of a float64.
func (k *Key) Float(v float64) *Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	k.b = append(k.b, buf[:]...)
	return k
}

// Floats appends a slice of float64 values (length-prefixed).
func (k *Key) Floats(vs []float64) *Key {
	k.Int(len(vs))
	for _, v := range vs {
		k.Float(v)
	}
	return k
}

// String returns the accumulated key.
func (k *Key) String() string { return string(k.b) }
