package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// A directive is one parsed //bvclint:allow comment. It suppresses
// diagnostics of one named analyzer on exactly one line: the line the
// comment trails, or — when the comment stands on its own line — the
// line immediately below it.
type directive struct {
	analyzer string
	file     string
	// target is the line whose diagnostics the directive suppresses.
	target int
	// pos is the directive comment itself, where staleness is reported.
	pos token.Position
}

const directivePrefix = "//bvclint:allow"

// scanDirectives extracts every //bvclint:allow directive from the
// package's comments. Malformed directives — an analyzer name the
// suite doesn't know, or a missing "-- justification" tail — are
// themselves reported under the pseudo-analyzer "bvclint", so stale or
// typo'd suppressions can never silently disable a check.
func scanDirectives(pkg *Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //bvclint:allowance — not ours
				}
				name, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				report := func(format string, args ...any) {
					diags = append(diags, Diagnostic{
						Analyzer: "bvclint",
						Pos:      pos,
						Message:  fmt.Sprintf(format, args...),
					})
				}
				if name == "" || strings.ContainsAny(name, " \t") {
					report("malformed directive: want //bvclint:allow <analyzer> -- <justification>")
					continue
				}
				if !known[name] {
					report("directive names unknown analyzer %q", name)
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report("directive for %s is missing a justification (append: -- <why this site is exempt>)", name)
					continue
				}
				target := pos.Line
				if ownLine(pkg.Src[pos.Filename], pos) {
					target = pos.Line + 1
				}
				dirs = append(dirs, directive{analyzer: name, file: pos.Filename, target: target, pos: pos})
			}
		}
	}
	return dirs, diags
}

// ownLine reports whether only whitespace precedes the comment on its
// line, i.e. the directive does not trail code.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return len(bytes.TrimSpace(src[start:pos.Offset])) == 0
}

// applyDirectives drops each diagnostic whose (file, line, analyzer)
// matches a directive's target. The returned slice marks, per
// directive, whether it suppressed at least one diagnostic — the
// staleness check turns unused directives into findings of their own.
func applyDirectives(diags []Diagnostic, dirs []directive) ([]Diagnostic, []bool) {
	used := make([]bool, len(dirs))
	if len(dirs) == 0 {
		return diags, used
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	// Last directive wins the key; an exact duplicate is left unused
	// and therefore reported stale, which is the right answer for it.
	allowed := make(map[key]int, len(dirs))
	for i, d := range dirs {
		allowed[key{d.file, d.target, d.analyzer}] = i
	}
	kept := diags[:0]
	for _, d := range diags {
		if i, ok := allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			used[i] = true
			continue
		}
		kept = append(kept, d)
	}
	return kept, used
}

// Exception is one entry of the curated exceptions file: a whole-file
// exemption from one analyzer, carrying its justification. Inline
// //bvclint:allow directives are preferred; the file exists for
// exemptions that are structural rather than line-local (e.g. an
// entire bench harness that legitimately reads the wall clock).
type Exception struct {
	// PathSuffix matches diagnostics whose file path ends with it
	// (slash-separated, e.g. "internal/bench/bench.go").
	PathSuffix string
	Analyzer   string
	Reason     string
	// Line is the entry's line number in the exceptions file, so a
	// stale entry can be reported at its own position.
	Line int
}

// ParseExceptions reads the exceptions file: one exception per line,
// `<path-suffix> <analyzer> -- <justification>`, with blank lines and
// #-comments ignored. Every field is mandatory.
func ParseExceptions(path string) ([]Exception, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var excs []Exception
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, reason, ok := strings.Cut(line, "--")
		fields := strings.Fields(head)
		if !ok || len(fields) != 2 || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("%s:%d: want `<path-suffix> <analyzer> -- <justification>`", path, lineno)
		}
		excs = append(excs, Exception{
			PathSuffix: fields[0],
			Analyzer:   fields[1],
			Reason:     strings.TrimSpace(reason),
			Line:       lineno,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return excs, nil
}

func applyExceptions(diags []Diagnostic, excs []Exception) []Diagnostic {
	return applyExceptionsTracked(diags, excs, make([]bool, len(excs)))
}

// applyExceptionsTracked is applyExceptions with cross-package usage
// accounting: used[i] is set when entry i exempts at least one
// diagnostic, so the driver can report entries that exempt nothing
// over a whole-tree run.
func applyExceptionsTracked(diags []Diagnostic, excs []Exception, used []bool) []Diagnostic {
	if len(excs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		exempt := false
		for i, e := range excs {
			if d.Analyzer == e.Analyzer && strings.HasSuffix(d.Pos.Filename, e.PathSuffix) {
				exempt = true
				used[i] = true
				break
			}
		}
		if !exempt {
			kept = append(kept, d)
		}
	}
	return kept
}
