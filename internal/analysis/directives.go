package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"strings"
)

// A directive is one parsed //bvclint:allow comment. It suppresses
// diagnostics of one named analyzer on exactly one line: the line the
// comment trails, or — when the comment stands on its own line — the
// line immediately below it.
type directive struct {
	analyzer string
	file     string
	// target is the line whose diagnostics the directive suppresses.
	target int
}

const directivePrefix = "//bvclint:allow"

// scanDirectives extracts every //bvclint:allow directive from the
// package's comments. Malformed directives — an analyzer name the
// suite doesn't know, or a missing "-- justification" tail — are
// themselves reported under the pseudo-analyzer "bvclint", so stale or
// typo'd suppressions can never silently disable a check.
func scanDirectives(pkg *Package, known map[string]bool) ([]directive, []Diagnostic) {
	var dirs []directive
	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //bvclint:allowance — not ours
				}
				name, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				report := func(format string, args ...any) {
					diags = append(diags, Diagnostic{
						Analyzer: "bvclint",
						Pos:      pos,
						Message:  fmt.Sprintf(format, args...),
					})
				}
				if name == "" || strings.ContainsAny(name, " \t") {
					report("malformed directive: want //bvclint:allow <analyzer> -- <justification>")
					continue
				}
				if !known[name] {
					report("directive names unknown analyzer %q", name)
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report("directive for %s is missing a justification (append: -- <why this site is exempt>)", name)
					continue
				}
				target := pos.Line
				if ownLine(pkg.Src[pos.Filename], pos) {
					target = pos.Line + 1
				}
				dirs = append(dirs, directive{analyzer: name, file: pos.Filename, target: target})
			}
		}
	}
	return dirs, diags
}

// ownLine reports whether only whitespace precedes the comment on its
// line, i.e. the directive does not trail code.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return len(bytes.TrimSpace(src[start:pos.Offset])) == 0
}

// applyDirectives drops each diagnostic whose (file, line, analyzer)
// matches a directive's target.
func applyDirectives(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := make(map[key]bool, len(dirs))
	for _, d := range dirs {
		allowed[key{d.file, d.target, d.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// Exception is one entry of the curated exceptions file: a whole-file
// exemption from one analyzer, carrying its justification. Inline
// //bvclint:allow directives are preferred; the file exists for
// exemptions that are structural rather than line-local (e.g. an
// entire bench harness that legitimately reads the wall clock).
type Exception struct {
	// PathSuffix matches diagnostics whose file path ends with it
	// (slash-separated, e.g. "internal/bench/bench.go").
	PathSuffix string
	Analyzer   string
	Reason     string
}

// ParseExceptions reads the exceptions file: one exception per line,
// `<path-suffix> <analyzer> -- <justification>`, with blank lines and
// #-comments ignored. Every field is mandatory.
func ParseExceptions(path string) ([]Exception, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var excs []Exception
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, reason, ok := strings.Cut(line, "--")
		fields := strings.Fields(head)
		if !ok || len(fields) != 2 || strings.TrimSpace(reason) == "" {
			return nil, fmt.Errorf("%s:%d: want `<path-suffix> <analyzer> -- <justification>`", path, lineno)
		}
		excs = append(excs, Exception{
			PathSuffix: fields[0],
			Analyzer:   fields[1],
			Reason:     strings.TrimSpace(reason),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return excs, nil
}

func applyExceptions(diags []Diagnostic, excs []Exception) []Diagnostic {
	if len(excs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		exempt := false
		for _, e := range excs {
			if d.Analyzer == e.Analyzer && strings.HasSuffix(d.Pos.Filename, e.PathSuffix) {
				exempt = true
				break
			}
		}
		if !exempt {
			kept = append(kept, d)
		}
	}
	return kept
}
