package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanLife guards the two channel-lifecycle mistakes that panic at
// runtime instead of failing a test: closing a channel twice, and
// sending on a channel that a different goroutine may close (a
// send-on-closed panic that only fires on the losing schedule). The
// ownership rule the analyzer enforces is the standard one — a channel
// is closed exactly once, by the side that sends on it:
//
//  1. two or more close(ch) sites on the same channel are a finding
//     unless every one of them is wrapped in a sync.Once.Do;
//  2. a send ch <- v in one goroutine context while close(ch) lives in
//     a different context is a finding — either move the close to the
//     sender or prove the ordering with a done-channel and annotate.
//
// The package is the analysis unit: the close typically lives in
// Close() and the sends in per-peer writer goroutines, so no single
// function sees both.
var ChanLife = &Analyzer{
	Name: "chanlife",
	Doc:  "no double-close, and no send on a channel another goroutine may close",
	Run:  runChanLife,
}

// chanCtx identifies the goroutine context of a site: the enclosing
// declared function plus the chain of `go func(){...}` literals.
type chanCtx struct {
	fn   *types.Func
	goID int // 0 = the function's own goroutine, >0 = nth go-literal
}

type chanSite struct {
	pos    token.Pos
	ctx    chanCtx
	inOnce bool // lexically inside a sync.Once.Do callback
}

func runChanLife(pass *Pass) error {
	closes := map[types.Object][]chanSite{}
	sends := map[types.Object][]chanSite{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			collectChanSites(pass, fn.Body, chanCtx{fn: obj}, closes, sends)
		}
	}

	var objs []types.Object
	for obj := range closes {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	for _, obj := range objs {
		cls := closes[obj]
		sort.Slice(cls, func(i, j int) bool { return cls[i].pos < cls[j].pos })
		// Rule 1: multiple closes, not all Once-guarded.
		if len(cls) > 1 {
			allOnce := true
			for _, c := range cls {
				if !c.inOnce {
					allOnce = false
					break
				}
			}
			if !allOnce {
				for _, c := range cls[1:] {
					pass.Reportf(c.pos,
						"channel %s is closed in %d places (first at %s); a second close panics — close in exactly one owner or guard every close with sync.Once",
						obj.Name(), len(cls), pass.Fset.Position(cls[0].pos))
				}
			}
		}
		// Rule 2: sends in a different goroutine context than a close.
		for _, s := range sends[obj] {
			for _, c := range cls {
				if c.ctx != s.ctx {
					pass.Reportf(s.pos,
						"send on %s, which a different goroutine may close (close at %s); a send racing the close panics — only the sending side should close",
						obj.Name(), pass.Fset.Position(c.pos))
					break
				}
			}
		}
	}
	return nil
}

// collectChanSites walks one goroutine context, recursing into go
// literals with a fresh context id and into sync.Once.Do callbacks
// with inOnce set.
func collectChanSites(pass *Pass, body *ast.BlockStmt, ctx chanCtx, closes, sends map[types.Object][]chanSite) {
	goN := 0
	var walk func(n ast.Node, ctx chanCtx, inOnce bool)
	walk = func(root ast.Node, ctx chanCtx, inOnce bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					goN++
					walk(fl.Body, chanCtx{fn: ctx.fn, goID: goN}, inOnce)
					// Arguments evaluate in the spawning context.
					for _, a := range n.Call.Args {
						walk(a, ctx, inOnce)
					}
					return false
				}
			case *ast.FuncLit:
				// Deferred/stored closure: same goroutine context here
				// is the conservative default (defers run in their
				// function's goroutine).
				return true
			case *ast.CallExpr:
				if isOnceDo(pass, n) && len(n.Args) == 1 {
					if fl, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit); ok {
						walk(fl.Body, ctx, true)
						return false
					}
				}
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if obj := chanObj(pass, n.Args[0]); obj != nil {
							closes[obj] = append(closes[obj], chanSite{pos: n.Pos(), ctx: ctx, inOnce: inOnce})
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanObj(pass, n.Chan); obj != nil {
					sends[obj] = append(sends[obj], chanSite{pos: n.Pos(), ctx: ctx, inOnce: inOnce})
				}
			}
			return true
		})
	}
	walk(body, ctx, false)
}

// isOnceDo reports whether call is (*sync.Once).Do.
func isOnceDo(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "sync"
}

// chanObj resolves the channel operand to a stable object: a variable
// or a struct field. Map/index lookups and call results are not
// trackable and return nil.
func chanObj(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel)
	}
	return nil
}
