// Fixture for the //bvclint:allow directive pipeline, run under the
// nodeterminism analyzer: a directive suppresses exactly one line's
// diagnostics, and a bad directive is itself diagnosed.
package allow

import "time"

func suppressedNextLine() time.Time {
	//bvclint:allow nodeterminism -- fixture: own-line directive covers the next line
	return time.Now() // ok: suppressed
}

func suppressedTrailing() time.Time {
	return time.Now() //bvclint:allow nodeterminism -- fixture: trailing directive covers its own line
}

func onlyOneLine() time.Time {
	//bvclint:allow nodeterminism -- fixture: the directive reaches exactly one line, not the whole block
	t := time.Now() // ok: suppressed (the one covered line)
	_ = t
	return time.Now() // want `nondeterministic call time\.Now`
}

func wrongAnalyzer() time.Time {
	//bvclint:allow maporder -- fixture: names a different analyzer, so nodeterminism still fires
	return time.Now() // want `nondeterministic call time\.Now`
}

func unknownAnalyzer() time.Time {
	//bvclint:allow nosuchanalyzer -- fixture: bogus name // want `directive names unknown analyzer "nosuchanalyzer"`
	return time.Now() // want `nondeterministic call time\.Now`
}

func staleSuppression() int {
	//bvclint:allow nodeterminism -- fixture: nothing on the next line triggers nodeterminism // want `stale directive: nodeterminism reports nothing on the covered line`
	return 1
}
