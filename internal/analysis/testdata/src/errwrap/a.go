// Fixture for the errwrap analyzer: sentinel wrapping and matching
// discipline.
package errwrap

import (
	"errors"
	"fmt"
)

var ErrBase = errors.New("errwrap: base failure")

var notASentinel = errors.New("lowercase, not part of the contract")

func wrapsUnderV(i int) error {
	return fmt.Errorf("op %d failed: %v", i, ErrBase) // want `sentinel ErrBase passed to fmt\.Errorf under %v`
}

func wrapsUnderS() error {
	return fmt.Errorf("failed: %s", ErrBase) // want `sentinel ErrBase passed to fmt\.Errorf under %s`
}

func wrapsRight(i int) error {
	return fmt.Errorf("op %d failed: %w", i, ErrBase) // ok: errors.Is reaches ErrBase
}

func doubleWrap(err error) error {
	return fmt.Errorf("%w: %w", ErrBase, err) // ok: multi-%w keeps both chains
}

func directCompare(err error) bool {
	return err == ErrBase // want `direct comparison against sentinel ErrBase`
}

func directCompareNeq(err error) bool {
	return ErrBase != err // want `direct comparison against sentinel ErrBase`
}

func properMatch(err error) bool {
	return errors.Is(err, ErrBase) // ok
}

func adHocNew() error {
	return errors.New("one-off") // want `ad-hoc errors\.New at return site`
}

func adHocErrorf(i int) error {
	return fmt.Errorf("op %d failed", i) // want `returned fmt\.Errorf has no %w and no sentinel`
}

func chainsCause(err error) error {
	return fmt.Errorf("while deciding: %w", err) // ok: wraps the cause, chain preserved
}

func nilCompare(err error) bool {
	return err == nil // ok: nil comparison is the idiom
}
