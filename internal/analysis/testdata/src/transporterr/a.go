// Package transporterr is the fixture for the transporterr analyzer:
// every transport error must chain the root ErrTransport sentinel.
package transporterr

import (
	"errors"
	"fmt"
)

// ErrTransport is the root sentinel — the one errors.New in scope.
var ErrTransport = errors.New("transport")

// ErrClosed chains the root correctly.
var ErrClosed = fmt.Errorf("%w: endpoint closed", ErrTransport)

// ErrLink chains through a derived sentinel, which is also fine.
var ErrLink = fmt.Errorf("%w: link failure", ErrClosed)

var ErrRogue = errors.New("rogue") // want `derived sentinel ErrRogue declared with errors\.New`

var ErrDangling = fmt.Errorf("dangling") // want `sentinel ErrDangling does not chain a root sentinel under %w`

var ErrOrphan = fmt.Errorf("orphan: %w", errors.New("inner")) // want `sentinel ErrOrphan wraps no declared sentinel` `errors\.New mints an error outside the ErrTransport chain`

func wrapOK(err error) error {
	return fmt.Errorf("%w: send to peer 3: %w", ErrClosed, err)
}

func adHocNew() error {
	return errors.New("boom") // want `errors\.New mints an error outside the ErrTransport chain`
}

func dropChain(err error) error {
	return fmt.Errorf("link failed: %v", err) // want `transport error minted without %w`
}

func compareEq(err error) bool {
	return err == ErrTransport // want `direct comparison against sentinel ErrTransport`
}

func compareNeq(err error) bool {
	return err != ErrClosed // want `direct comparison against sentinel ErrClosed`
}

func allowed() error {
	return errors.New("io: deliberate opaque error") //bvclint:allow transporterr -- fixture proves suppression works
}
