// Fixture for the locksafe analyzer: locks released on every path,
// never copied, nested in one order.
package locksafe

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return 1 // ok: unlock is deferred
	}
	return 0
}

func (s *S) straightLine() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock() // ok: no exit between lock and unlock
}

func (s *S) earlyReturn() int {
	s.mu.Lock() // want `S\.mu is not released on the return/panic path`
	if s.n > 0 {
		return 1
	}
	s.mu.Unlock()
	return 0
}

func (s *S) panics() {
	s.mu.Lock() // want `S\.mu is not released on the return/panic path`
	if s.n < 0 {
		panic("negative")
	}
	s.mu.Unlock()
}

func (s *S) neverReleased() {
	s.mu.Lock() // want `S\.mu is locked but never released in this function`
	s.n++
}

func (s *S) repeated() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock() // ok: two balanced critical sections
}

type R struct {
	mu sync.RWMutex
	v  int
}

func (r *R) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v // ok: reader pairing matches
}

// --- lock copies ---

func byValueParam(s S) int { // want `by-value parameter copies S`
	return s.n
}

func (s S) byValueRecv() int { // want `by-value receiver copies S`
	return s.n
}

func copyAssign(s *S) int {
	c := *s // want `assignment of \*s copies S`
	return c.n
}

func pointerParam(s *S) int { // ok: pointer
	return s.n
}

// --- lock order ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // ok: establishes the package order a -> b
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) abAgain() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // ok: same order
	defer p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want `inconsistent lock order: pair\.a and pair\.b are acquired in opposite orders`
	p.a.Unlock()
	p.b.Unlock()
}
