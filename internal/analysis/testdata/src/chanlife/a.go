// Fixture for the chanlife analyzer: close exactly once, and only
// from the goroutine context that sends.
package chanlife

import "sync"

// ok: the goroutine that sends is the goroutine that closes.
func producer(vals []int) <-chan int {
	ch := make(chan int)
	go func() {
		for _, v := range vals {
			ch <- v
		}
		close(ch)
	}()
	return ch
}

// Send in the function body while a spawned goroutine closes: the
// send can race the close.
func mixed() {
	ch := make(chan int)
	go func() { close(ch) }()
	ch <- 1 // want `send on ch, which a different goroutine may close`
}

type node struct {
	resq chan int
	sig  chan struct{}
	done chan struct{}
	once sync.Once
}

// Worker goroutines send on resq...
func (n *node) work() {
	go func() {
		n.resq <- 1 // want `send on resq, which a different goroutine may close`
	}()
}

// ...while Close closes it from the caller's goroutine.
func (n *node) Close() {
	close(n.resq)
}

// Two unguarded closes of the same signal channel.
func (n *node) sigA() {
	close(n.sig)
}

func (n *node) sigB() {
	close(n.sig) // want `channel sig is closed in 2 places`
}

// Both closes behind the same sync.Once: clean.
func (n *node) stopA() {
	n.once.Do(func() { close(n.done) })
}

func (n *node) stopB() {
	n.once.Do(func() { close(n.done) }) // ok: Once-guarded
}

// Receives are never findings.
func (n *node) wait() {
	<-n.done // ok
}
