// Fixture for the maporder analyzer: order-sensitive work inside
// `for range` over a map.
package maporder

import "sort"

func channelSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside .for range. over a map`
	}
}

type emitter struct{}

func (emitter) Send(int)      {}
func (emitter) Observe(int)   {}
func (emitter) Broadcast(int) {}

func emits(m map[int]int, e emitter) {
	for k := range m {
		e.Send(k) // want `Send call inside .for range. over a map`
		e.Observe(k) // ok: not an emission method
	}
}

func floatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation into "sum"`
	}
	return sum
}

func floatAccumPlain(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation into "total"`
	}
	return total
}

func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition is associative, order cannot change the result
	}
	return n
}

func escapingAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `append to "out" \(declared outside the loop\)`
	}
	return out
}

func collectKeys(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: the blessed collect-then-sort idiom
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k]) // ok: slice iteration, not a map
	}
	return out
}

func loopLocalAppend(m map[int]string) {
	for _, v := range m {
		tmp := []string{}
		tmp = append(tmp, v) // ok: tmp does not outlive the iteration
		_ = tmp
	}
}
