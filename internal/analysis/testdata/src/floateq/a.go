// Fixture for the floateq analyzer: exact float comparison discipline
// in the geometry packages.
package floateq

type point []float64

func exactCompare(a, b float64) bool {
	return a == b // want `exact == on computed float64 values`
}

func exactNegCompare(a, b float64) bool {
	return a != b // want `exact != on computed float64 values`
}

func componentCompare(v, w point) bool {
	return v[0] == w[0] // want `exact == on computed float64 values`
}

func zeroGuard(denom float64) bool {
	return denom == 0 // ok: comparison against a constant is a deliberate exactness claim
}

func oneClamp(alpha float64) bool {
	return alpha != 1.0 // ok: constant comparison
}

func intCompare(a, b int) bool {
	return a == b // ok: integers compare exactly
}

func approxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d == 0 { // ok: constant comparison inside a tolerance helper anyway
		return true
	}
	return d <= tol
}

// withinEq is a designated equality helper (name suffix "Eq"): its
// whole job is to define equality, so exact comparison is allowed.
func withinEq(a, b float64) bool {
	return a == b // ok: tolerance/equality helper body is exempt
}

// PrefilterMargin mirrors geom.PrefilterMargin: the shared screen-vs-LP
// slack constant the analyzer exempts by name.
const PrefilterMargin = 1e-9

func marginCompare(lo, hi float64) bool {
	return lo == hi+PrefilterMargin // ok: named tolerance constant states the slack
}

func marginCompareNeg(lo, hi float64) bool {
	return lo-PrefilterMargin != hi // ok: named tolerance constant
}

func marginImpostor(lo, hi float64) bool {
	PrefilterMargin := hi * 0.5     // a variable sharing the name is no exemption
	return lo == hi+PrefilterMargin // want `exact == on computed float64 values`
}
