// Fixture for the ctxleak analyzer: goroutines need a cancellation
// path, loops must not allocate per-iteration timers, cancel funcs
// must not be dropped.
package ctxleak

import (
	"context"
	"time"
)

type node struct {
	inbox   chan int
	closing chan struct{}
}

func (t *node) guardedSelect() {
	go func() { // ok: receives from a closing channel
		for {
			select {
			case v := <-t.inbox:
				_ = v
			case <-t.closing:
				return
			}
		}
	}()
}

func (t *node) guardedCtx(ctx context.Context) {
	go func() { // ok: ctx.Done() receive
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-t.inbox:
				_ = v
			}
		}
	}()
}

func (t *node) guardedRange() {
	go func() { // ok: range ends when inbox is closed
		for v := range t.inbox {
			_ = v
		}
	}()
}

func (t *node) unguarded() {
	go func() { // want `goroutine loops forever with no cancellation path`
		for {
			v := <-t.inbox
			_ = v
		}
	}()
}

// pump loops forever with no exit; spawning it is the finding.
func (t *node) pump() {
	for {
		v := <-t.inbox
		_ = v
	}
}

func (t *node) spawnPump() {
	go t.pump() // want `goroutine pump loops forever with no cancellation path`
}

// drain has the same shape but exits via range — clean through the
// same interprocedural summary.
func (t *node) drain() {
	for v := range t.inbox {
		_ = v
	}
}

func (t *node) spawnDrain() {
	go t.drain() // ok
}

// relay reaches pump's loop two call-graph hops away.
func (t *node) relay() { t.pump() }

func (t *node) spawnRelay() {
	go t.relay() // want `goroutine relay loops forever with no cancellation path`
}

// --- per-iteration timers ---

func timerPerIteration(ch chan int, d time.Duration) {
	for {
		select {
		case <-ch:
		case <-time.After(d): // want `time\.After inside a loop`
			return
		}
	}
}

func oneShotTimeout(ch chan int, d time.Duration) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(d): // ok: not inside a loop
		return 0
	}
}

func hoistedTimer(ch chan int, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	for {
		select {
		case <-ch:
			t.Reset(d)
		case <-t.C: // ok: one timer, reset per iteration
			return
		}
	}
}

func tick(xs []int) {
	for range xs {
		<-time.Tick(time.Second) // want `time\.Tick leaks its ticker`
	}
}

// --- dropped cancel funcs ---

func droppedCancel(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `context\.WithCancel cancel function is discarded`
	return ctx
}

func droppedTimeout(parent context.Context, d time.Duration) context.Context {
	ctx, _ := context.WithTimeout(parent, d) // want `context\.WithTimeout cancel function is discarded`
	return ctx
}

func keptCancel(parent context.Context) {
	ctx, cancel := context.WithCancel(parent) // ok: cancel kept and deferred
	defer cancel()
	_ = ctx
}
