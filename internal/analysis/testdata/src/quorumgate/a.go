// Fixture for the quorumgate analyzer: quorum comparisons must go
// through named threshold helpers, not inline n/f/d arithmetic.
package quorumgate

type config struct{ N, F, D int }

// Named helpers: the audited definitions the analyzer wants.
func relayQuorum(f int) int  { return f + 1 }
func admitQuorum(f int) int  { return 2*f + 1 }
func auxQuorum(n, f int) int { return n - f }
func minN(f, d int) int      { return max(3*f+1, (d+1)*f+1) }

// A boolean helper whose name marks it as the threshold definition may
// compare inline: its body is the audited definition.
func echoQuorum(cnt, n, f int) bool { return 2*cnt > n+f } // ok: named definition

func inlined(cfg config, cnt, valid int) bool {
	if cnt >= cfg.F+1 { // want `quorum comparison inlines arithmetic on cfg\.F\+1`
		return true
	}
	if cnt >= 2*cfg.F+1 { // want `quorum comparison inlines arithmetic`
		return true
	}
	if valid < cfg.N-cfg.F { // want `quorum comparison inlines arithmetic on cfg\.N-cfg\.F`
		return true
	}
	if cfg.N < 3*cfg.F+1 { // want `quorum comparison inlines arithmetic`
		return false
	}
	return 2*cnt > cfg.N+cfg.F // want `quorum comparison inlines arithmetic`
}

func localSymbols(cfg config, cnt int) bool {
	n, f := cfg.N, cfg.F
	if cnt >= n-f { // want `quorum comparison inlines arithmetic on n-f`
		return true
	}
	return cnt == f+1 // want `quorum comparison inlines arithmetic on f\+1`
}

func throughHelpers(cfg config, cnt, valid int) bool {
	if cnt >= relayQuorum(cfg.F) { // ok: named helper
		return true
	}
	if cnt >= admitQuorum(cfg.F) { // ok
		return true
	}
	if valid < auxQuorum(cfg.N, cfg.F) { // ok
		return true
	}
	return cfg.N < minN(cfg.F, cfg.D) // ok
}

func plainComparisons(cfg config, slot int, xs []int) bool {
	for i := 0; i < cfg.N; i++ { // ok: plain bound, no arithmetic
		_ = i
	}
	if slot >= cfg.N { // ok
		return false
	}
	lim := len(xs) - 1
	return slot < lim+1 // ok: arithmetic without n/f/d symbols
}

// Precomputing the threshold into a named local is the same as a
// helper call at the comparison site: the arithmetic is not inline.
func precomputed(cfg config, cnt int) bool {
	quorum := auxQuorum(cfg.N, cfg.F)
	return cnt >= quorum // ok
}
