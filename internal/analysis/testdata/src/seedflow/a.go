// Fixture for the seedflow analyzer: seed parameters must reach every
// RNG the function constructs.
package seedflow

import "math/rand"

func direct(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: seed flows into the source
	return rng.Intn(10)
}

func derived(seed int64) int {
	mixed := seed*6364136223846793005 + 1442695040888963407
	rng := rand.New(rand.NewSource(mixed)) // ok: derived from seed via a local
	return rng.Intn(10)
}

func perTrial(seedBase int64, trial int) int {
	s := seedBase + int64(trial)
	rng := rand.New(rand.NewSource(s)) // ok: seedBase participates
	return rng.Intn(10)
}

func constant(seed int64) int {
	rng := rand.New(rand.NewSource(42)) // want `math/rand\.NewSource argument is not derived from the function's seed parameter`
	return rng.Intn(10)
}

func ignoresSeed(seed int64, n int) int {
	rng := rand.New(rand.NewSource(int64(n))) // want `math/rand\.NewSource argument is not derived`
	return rng.Intn(10)
}

func globalDraw(seed int64) int {
	return rand.Intn(10) // want `global math/rand\.Intn inside a seed-taking function ignores the seed parameter`
}

func noSeedParam(n int) int {
	return rand.Intn(n) // ok: no seed contract to honor (nodeterminism owns protocol packages)
}

// --- interprocedural cases: the seed escapes (or fails to escape)
// through helper calls. The pre-interprocedural analyzer, which only
// looked at rand constructors lexically inside the seed-taking
// function, was silent on every `want` below.

func newRNG(s int64) *rand.Rand { // ok: no seed contract of its own
	return rand.New(rand.NewSource(s))
}

func fixedRNG() *rand.Rand { // ok here: reported at seed-taking callers
	return rand.New(rand.NewSource(99))
}

func drawGlobal() int { // ok here: reported at seed-taking callers
	return rand.Int()
}

func viaHelper(seed int64) int {
	rng := newRNG(seed) // ok: seed reaches the constructor through the call edge
	return rng.Intn(10)
}

func viaHelperDerived(seed int64) int {
	rng := newRNG(seed ^ 0x9e3779b9) // ok: derived value still carries the taint
	return rng.Intn(10)
}

func viaHelperConstant(seed int64) int {
	rng := newRNG(1234) // want `call to newRNG constructs an RNG not derived from the function's seed parameter`
	return rng.Intn(10)
}

func viaFixedHelper(seed int64) int {
	rng := fixedRNG() // want `call to fixedRNG constructs an RNG not derived from the function's seed parameter`
	return rng.Intn(10)
}

func viaGlobalHelper(seed int64) int {
	return drawGlobal() // want `call to drawGlobal draws from the global math/rand source inside a seed-taking function`
}

// Two hops: the constructor is two call edges away.
func midHelper(v int64) *rand.Rand {
	return newRNG(v)
}

func viaTwoHops(seed int64) int {
	return midHelper(seed).Intn(10) // ok: taint survives both edges
}

func viaTwoHopsBroken(seed int64) int {
	return midHelper(7).Intn(10) // want `call to midHelper constructs an RNG not derived from the function's seed parameter`
}

// Recursive helper: the summary must reach a fixpoint, not loop.
func recRNG(s int64, depth int) *rand.Rand {
	if depth == 0 {
		return rand.New(rand.NewSource(s))
	}
	return recRNG(s*3, depth-1)
}

func viaRecursion(seed int64) int {
	return recRNG(seed, 3).Intn(10) // ok: recursion preserves the taint
}

func viaRecursionBroken(seed int64) int {
	return recRNG(5, 3).Intn(10) // want `call to recRNG constructs an RNG not derived from the function's seed parameter`
}
