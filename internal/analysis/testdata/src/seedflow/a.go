// Fixture for the seedflow analyzer: seed parameters must reach every
// RNG the function constructs.
package seedflow

import "math/rand"

func direct(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: seed flows into the source
	return rng.Intn(10)
}

func derived(seed int64) int {
	mixed := seed*6364136223846793005 + 1442695040888963407
	rng := rand.New(rand.NewSource(mixed)) // ok: derived from seed via a local
	return rng.Intn(10)
}

func perTrial(seedBase int64, trial int) int {
	s := seedBase + int64(trial)
	rng := rand.New(rand.NewSource(s)) // ok: seedBase participates
	return rng.Intn(10)
}

func constant(seed int64) int {
	rng := rand.New(rand.NewSource(42)) // want `math/rand\.NewSource argument is not derived from the function's seed parameter`
	return rng.Intn(10)
}

func ignoresSeed(seed int64, n int) int {
	rng := rand.New(rand.NewSource(int64(n))) // want `math/rand\.NewSource argument is not derived`
	return rng.Intn(10)
}

func globalDraw(seed int64) int {
	return rand.Intn(10) // want `global math/rand\.Intn inside a seed-taking function ignores the seed parameter`
}

func noSeedParam(n int) int {
	return rand.Intn(n) // ok: no seed contract to honor (nodeterminism owns protocol packages)
}
