// Fixture for the atomicmix analyzer: a field touched via sync/atomic
// anywhere in the package must never also be accessed plainly.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	miss  int64
	typed atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.miss, 1)
	c.typed.Add(1) // ok: typed atomic cannot be mixed
}

func (c *counters) hitRate() int64 {
	return atomic.LoadInt64(&c.hits) + c.miss // want `field miss is accessed with atomic\.AddInt64 elsewhere in the package but read/written plainly here`
}

func (c *counters) reset() {
	c.miss = 0 // want `field miss is accessed with atomic\.AddInt64`
	atomic.StoreInt64(&c.hits, 0)
}

func (c *counters) typedRead() int64 {
	return c.typed.Load() // ok
}

func newCounters() *counters {
	return &counters{hits: 0, miss: 0} // ok: composite-literal init of a fresh value
}

// A field only ever accessed plainly is not atomicmix's business.
type plain struct{ n int64 }

func (p *plain) inc() { p.n++ }
func (p *plain) get() int64 {
	return p.n // ok
}
