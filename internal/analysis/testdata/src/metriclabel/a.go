// Fixture for the metriclabel analyzer: names on the internal/metrics
// registration surface.
package metriclabel

import "relaxedbvc/internal/metrics"

var (
	good = metrics.DefaultCounter("fixture_runs_total")
	bad  = metrics.DefaultCounter("Fixture-Runs") // want `metric name "Fixture-Runs" violates the snake_case scheme`
)

func dynamicName(name string) {
	metrics.DefaultGauge(name) // want `metric name passed to metrics\.DefaultGauge must be a string literal`
}

func composedName(prefix string) {
	metrics.DefaultCounter(prefix + "_total") // want `metric name passed to metrics\.DefaultCounter must be a string literal`
}

func histogram() {
	metrics.DefaultHistogram("fixture_latency_seconds", metrics.TimeBuckets()) // ok
}

func badSegments() {
	metrics.DefaultGauge("_leading_underscore") // want `violates the snake_case scheme`
	metrics.DefaultGauge("double__underscore")  // want `violates the snake_case scheme`
	metrics.DefaultGauge("fixture_queue_depth") // ok
}
