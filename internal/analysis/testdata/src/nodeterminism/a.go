// Fixture for the nodeterminism analyzer: entropy sources that must
// not appear in protocol packages.
package nodeterminism

import (
	crand "crypto/rand"
	mrand "math/rand"
	"os"
	"time"
)

func wallClock() {
	t := time.Now()   // want `nondeterministic call time\.Now \(wall clock\)`
	_ = time.Since(t) // want `nondeterministic call time\.Since`
	time.Sleep(0)     // want `nondeterministic call time\.Sleep`
}

func globalRand() int {
	_ = mrand.Float64() // want `global math/rand\.Float64 draws from the shared process-wide source`
	return mrand.Intn(10) // want `global math/rand\.Intn`
}

func explicitRNG(seed int64) int {
	rng := mrand.New(mrand.NewSource(seed)) // ok: explicit seeded source (seedflow's business)
	return rng.Intn(10)
}

func processIdentity() int {
	return os.Getpid() // want `nondeterministic call os\.Getpid \(process identity\)`
}

func cryptoEntropy(b []byte) {
	_, _ = crand.Read(b) // want `nondeterministic call crypto/rand\.Read \(non-reproducible entropy\)`
}

func deterministicTime(d time.Duration) time.Duration {
	return d * 2 // ok: arithmetic on durations is pure
}
