// Package analysis is the repo's static-analysis suite: a small
// go/analysis-style framework (stdlib-only — the container pins the
// module to zero external dependencies, so golang.org/x/tools is
// deliberately not imported) plus six analyzers that enforce the
// invariants the Vaidya–Garg-style BVC proofs assume of every
// execution:
//
//   - nodeterminism: no wall-clock / global-RNG / process-identity
//     entropy inside protocol packages (seeded replay, PR 3).
//   - maporder: no order-sensitive work (message emission, escaping
//     appends, float accumulation) inside `for range` over a map.
//   - errwrap: package sentinels reach errors.Is — %w wrapping and no
//     ad-hoc errors from the consensus/sched entry points.
//   - floateq: no exact ==/!= on computed floats in the geometry
//     packages that validate the Table 1 δ*(S) bounds.
//   - seedflow: a function that accepts a seed must derive every RNG
//     it builds from that seed.
//   - metriclabel: metric names are snake_case string literals, so
//     bench.Compare and the golden metrics files stay stable.
//
// The cmd/bvclint driver applies the analyzers over the module with
// per-analyzer package scopes, honours //bvclint:allow suppression
// directives and a curated exceptions file, and exits non-zero on any
// finding. See DESIGN.md §9.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the passes could be
// ported to the upstream framework without rewriting their Run
// functions.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bvclint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and
	// why the reproduction needs it.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package into an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Src maps each file name (as recorded in Fset) to its source
	// bytes; the directive scanner uses it to distinguish own-line
	// from trailing comments.
	Src map[string][]byte

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// CheckPackage runs the given analyzers over one package and filters
// the findings through the //bvclint:allow directive pipeline.
// Directive problems (unknown analyzer name, missing justification)
// surface as diagnostics of the pseudo-analyzer "bvclint". No scope
// filtering happens here — the analysistest harness calls this with
// fixture packages whose import paths are arbitrary.
func CheckPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Src:       pkg.Src,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	dirs, dirDiags := scanDirectives(pkg, known)
	kept, used := applyDirectives(diags, dirs)
	// Staleness: a directive whose analyzer ran over this package and
	// suppressed nothing is a suppression with no target — either the
	// violation was fixed (delete the directive) or the directive is
	// mis-addressed and silently disarming a future finding. Directives
	// naming analyzers that did NOT run stay exempt, so a partial run
	// (-only, a fixture harness) never flags another analyzer's allows.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for i, d := range dirs {
		if !used[i] && ran[d.analyzer] {
			dirDiags = append(dirDiags, Diagnostic{
				Analyzer: "bvclint",
				Pos:      d.pos,
				Message:  fmt.Sprintf("stale directive: %s reports nothing on the covered line; delete the //bvclint:allow (a suppression that suppresses nothing is a latent hole)", d.analyzer),
			})
		}
	}
	diags = append(kept, dirDiags...)
	sortDiagnostics(diags)
	return diags, nil
}

// RunOptions tunes a driver run of the analyzer suite.
type RunOptions struct {
	// Scope decides which analyzers apply to which package; nil means
	// InScope (the DefaultScope table). The -strict driver flag passes
	// InScopeStrict to widen coverage to the binaries and scripts.
	Scope func(a *Analyzer, pkgPath string) bool
	// StaleExceptionsPath, when non-empty, names the exceptions file
	// the run's exceptions came from: every entry that exempts no
	// diagnostic across the whole run is then reported stale at its
	// line in that file. Only meaningful for whole-tree runs — on a
	// partial package list most entries legitimately match nothing.
	StaleExceptionsPath string
}

// RunAnalyzers is the driver entry point: it applies each analyzer to
// each package it is in scope for (DefaultScope), runs the directive
// pipeline, and drops findings covered by the curated exceptions
// list. Diagnostics come back sorted by file, line, column.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, exceptions []Exception) ([]Diagnostic, error) {
	return RunAnalyzersOpts(pkgs, analyzers, exceptions, RunOptions{})
}

// RunAnalyzersOpts is RunAnalyzers with an explicit scope function and
// optional exceptions-staleness accounting.
func RunAnalyzersOpts(pkgs []*Package, analyzers []*Analyzer, exceptions []Exception, opts RunOptions) ([]Diagnostic, error) {
	scope := opts.Scope
	if scope == nil {
		scope = InScope
	}
	usedExc := make([]bool, len(exceptions))
	var out []Diagnostic
	for _, pkg := range pkgs {
		var scoped []*Analyzer
		for _, a := range analyzers {
			if scope(a, pkg.PkgPath) {
				scoped = append(scoped, a)
			}
		}
		diags, err := CheckPackage(pkg, scoped)
		if err != nil {
			return nil, err
		}
		out = append(out, applyExceptionsTracked(diags, exceptions, usedExc)...)
	}
	if opts.StaleExceptionsPath != "" {
		for i, e := range exceptions {
			if !usedExc[i] {
				out = append(out, Diagnostic{
					Analyzer: "bvclint",
					Pos:      token.Position{Filename: opts.StaleExceptionsPath, Line: e.Line, Column: 1},
					Message:  fmt.Sprintf("stale exception: %s exempts no %s diagnostic in this run; delete the entry", e.PathSuffix, e.Analyzer),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// --- shared type/AST helpers used by the analyzers ---

// pkgFunc resolves a call of the form pkg.F where pkg is an imported
// package, returning the package path and function name. It returns
// ("", "") for method calls, local calls and anything else.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// calleeFunc resolves the *types.Func a call dispatches to (package
// functions and methods alike), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorSentinel reports whether obj is a package-level variable of
// type error whose name starts with "Err" — the naming convention all
// sentinel declarations in this module follow.
func isErrorSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() { // package level only
		return false
	}
	if len(v.Name()) < 3 || v.Name()[:3] != "Err" {
		return false
	}
	return types.AssignableTo(v.Type(), errorType)
}

var errorType = types.Universe.Lookup("error").Type()

// declaredOutside reports whether the object bound to id was declared
// outside the [lo, hi] source range (e.g. outside a loop body).
func declaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// refersTo reports whether any identifier in the subtree rooted at n
// resolves to one of the given objects.
func refersTo(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
