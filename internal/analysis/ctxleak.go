package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxLeak flags goroutines and timers that outlive their usefulness:
//
//  1. a `go` statement spawning a function (literal or in-package
//     declaration, followed through the call graph) that loops forever
//     with no cancellation path — no receive from a context.Done() or
//     a done/quit/stop/close-style channel, and no `range` over a
//     channel (which ends when the channel closes). Such a goroutine
//     can never be shut down: every Run() that spawns it leaks one.
//  2. `time.After` inside a loop: each iteration allocates a timer
//     that is not collected until it fires, so a tight reconnect or
//     epoch loop with a long timeout accumulates thousands of live
//     timers. Hoist a time.NewTimer/NewTicker out of the loop.
//  3. a context cancel function discarded at creation
//     (`ctx, _ := context.WithCancel(...)`): the context can then
//     never be cancelled and its resources never release.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc: "goroutines need a cancellation path, loops must not allocate " +
		"per-iteration time.After timers, and context cancel funcs must not be dropped",
	Run: runCtxLeak,
}

func runCtxLeak(pass *Pass) error {
	graph := BuildCallGraph(pass)
	// loopSummaries: does the function body (transitively through
	// in-package static calls) contain an unguarded infinite loop?
	loops := NewSummaries(graph,
		func(node *FuncNode, get func(*types.Func) bool) bool {
			if hasUnguardedLoop(pass, node.Decl.Body) {
				return true
			}
			for _, cs := range node.Calls {
				if cs.Dynamic || cs.Callee == nil {
					continue
				}
				if get(cs.Callee) {
					return true
				}
			}
			return false
		},
		func(a, b bool) bool { return a == b })

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(pass, graph, loops, n)
			case *ast.ForStmt:
				checkLoopTimers(pass, n.Body)
			case *ast.RangeStmt:
				checkLoopTimers(pass, n.Body)
			case *ast.AssignStmt:
				checkDroppedCancel(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkGoStmt reports a spawn whose target loops forever without a
// cancellation path.
func checkGoStmt(pass *Pass, graph *CallGraph, loops *Summaries[bool], g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if hasUnguardedLoop(pass, fun.Body) {
			pass.Reportf(g.Pos(),
				"goroutine loops forever with no cancellation path (no ctx.Done()/done-channel receive, no channel range); it can never be shut down")
		}
	default:
		site := resolveCall(pass.TypesInfo, g.Call, nil)
		if site.Callee == nil || site.Dynamic {
			return
		}
		if loops.Get(site.Callee) {
			pass.Reportf(g.Pos(),
				"goroutine %s loops forever with no cancellation path (no ctx.Done()/done-channel receive, no channel range); it can never be shut down",
				site.Callee.Name())
		}
	}
}

// hasUnguardedLoop reports whether body contains a condition-less for
// loop with no cancellation receive inside it.
func hasUnguardedLoop(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopHasCancelPath(pass, loop.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopHasCancelPath scans a loop body (not descending into nested
// function literals) for an exit signal: a receive from a
// cancellation-style channel, a range over a channel, or a return
// statement (the loop can end on its own).
func loopHasCancelPath(pass *Pass, body *ast.BlockStmt) bool {
	has := false
	ast.Inspect(body, func(n ast.Node) bool {
		if has {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			has = true
			return false
		case *ast.BranchStmt:
			// break/goto: the loop can end on its own. (A break bound
			// to an inner switch over-approximates, which errs on the
			// quiet side.) continue does not exit.
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				has = true
				return false
			}
		case *ast.UnaryExpr:
			// <-ch : a receive counts when the channel looks like a
			// cancellation signal.
			if n.Op == token.ARROW && isCancelChan(pass, n.X) {
				has = true
				return false
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					has = true
					return false
				}
			}
		}
		return true
	})
	return has
}

// isCancelChan reports whether the received-from expression is a
// plausible cancellation source: ctx.Done()-style call, or a channel
// whose name suggests shutdown (done, quit, stop, closing, closed,
// exit, cancel, ctx).
func isCancelChan(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.SelectorExpr:
		return cancelName(e.Sel.Name)
	case *ast.Ident:
		return cancelName(e.Name)
	}
	return false
}

func cancelName(name string) bool {
	l := strings.ToLower(name)
	for _, w := range []string{"done", "quit", "stop", "clos", "exit", "cancel", "ctx", "shutdown"} {
		if strings.Contains(l, w) {
			return true
		}
	}
	return false
}

// checkLoopTimers flags time.After (and time.Tick, which leaks its
// ticker outright) inside a loop body, skipping nested function
// literals and nested loops (they get their own visit).
func checkLoopTimers(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops get their own visit from the driver walk
		case *ast.CallExpr:
			path, name := pkgFunc(pass.TypesInfo, n)
			if path != "time" {
				return true
			}
			switch name {
			case "After":
				pass.Reportf(n.Pos(),
					"time.After inside a loop allocates a timer per iteration that lives until it fires; hoist a time.NewTimer (Reset per iteration) out of the loop")
			case "Tick":
				pass.Reportf(n.Pos(),
					"time.Tick leaks its ticker; use time.NewTicker and defer ticker.Stop()")
			}
		}
		return true
	})
}

// checkDroppedCancel flags `ctx, _ := context.WithCancel/...` — the
// discarded CancelFunc means the context can never be released.
func checkDroppedCancel(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != 2 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	path, name := pkgFunc(pass.TypesInfo, call)
	if path != "context" {
		return
	}
	switch name {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
	default:
		return
	}
	if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(),
			"context.%s cancel function is discarded; the context (and its timer) can never be released — keep it and defer cancel()",
			name)
	}
}
