package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// TransportErr enforces the message-plane error contract of
// internal/transport: every error the package mints must chain to the
// root sentinel ErrTransport, so errors.Is(err, ErrTransport)
// classifies any network failure across the facade — the same
// discipline ErrDeliveryViolated provides for the simulated substrate.
// Three shapes are banned in scoped packages:
//
//  1. a derived package-level sentinel declared with errors.New (or a
//     %w-less fmt.Errorf): it starts a fresh chain the root can never
//     match. Only the root ErrTransport itself may use errors.New.
//  2. any fmt.Errorf without %w: the minted error drops whatever chain
//     its inputs carried.
//  3. err == ErrX / err != ErrX: breaks once the error is wrapped.
var TransportErr = &Analyzer{
	Name: "transporterr",
	Doc: "transport errors must chain the root ErrTransport sentinel under %w " +
		"and be matched with errors.Is",
	Run: runTransportErr,
}

// transportRootSentinel is the one sentinel allowed to start the chain.
const transportRootSentinel = "ErrTransport"

func runTransportErr(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				checkTransportSentinelDecl(pass, gd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTransportMint(pass, n, f)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkTransportSentinelDecl audits package-level `var Err* = ...`
// declarations: derived sentinels must wrap a sentinel under %w.
func checkTransportSentinelDecl(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if !strings.HasPrefix(name.Name, "Err") || i >= len(vs.Values) {
				continue
			}
			call, ok := vs.Values[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			path, fn := pkgFunc(pass.TypesInfo, call)
			switch {
			case path == "errors" && fn == "New":
				if name.Name != transportRootSentinel {
					pass.Reportf(call.Pos(),
						"derived sentinel %s declared with errors.New starts a chain errors.Is(err, %s) can never match; declare it as fmt.Errorf(\"%%w: ...\", %s)",
						name.Name, transportRootSentinel, transportRootSentinel)
				}
			case path == "fmt" && fn == "Errorf":
				format, ok := stringLit(call.Args[0])
				if ok && !strings.Contains(format, "%w") {
					pass.Reportf(call.Pos(),
						"sentinel %s does not chain a root sentinel under %%w; errors.Is(err, %s) will not match it",
						name.Name, transportRootSentinel)
					continue
				}
				hasSentinel := false
				for _, arg := range call.Args[1:] {
					if exprIsSentinel(pass, arg) {
						hasSentinel = true
						break
					}
				}
				if !hasSentinel {
					pass.Reportf(call.Pos(),
						"sentinel %s wraps no declared sentinel; chain %s (directly or through a derived sentinel)",
						name.Name, transportRootSentinel)
				}
			}
		}
	}
}

// checkTransportMint flags error constructors that drop the chain:
// errors.New anywhere outside the root declaration, and fmt.Errorf
// without %w.
func checkTransportMint(pass *Pass, call *ast.CallExpr, file *ast.File) {
	if isSentinelDeclInit(call, file) {
		return // checkTransportSentinelDecl owns sentinel initializers
	}
	path, fn := pkgFunc(pass.TypesInfo, call)
	switch {
	case path == "errors" && fn == "New":
		pass.Reportf(call.Pos(),
			"errors.New mints an error outside the %s chain; wrap a transport sentinel with fmt.Errorf(\"%%w: ...\", ErrX)",
			transportRootSentinel)
	case path == "fmt" && fn == "Errorf":
		format, ok := stringLit(call.Args[0])
		if ok && !strings.Contains(format, "%w") {
			pass.Reportf(call.Pos(),
				"transport error minted without %%w drops the %s chain; wrap a sentinel or the cause with %%w",
				transportRootSentinel)
		}
	}
}

// isSentinelDeclInit reports whether call is the direct initializer of
// a package-level Err* variable, which checkTransportSentinelDecl
// audits separately (and allows for the root sentinel only).
func isSentinelDeclInit(call *ast.CallExpr, file *ast.File) bool {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if strings.HasPrefix(name.Name, "Err") && i < len(vs.Values) && vs.Values[i] == call {
					return true
				}
			}
		}
	}
	return false
}
