package analysis

import (
	"go/ast"
)

// NoDeterminism flags entropy sources inside protocol packages. The
// whole simulation stack promises seeded replay: the fault substrate
// derives per-link drops from a seed hash (PR 3), transcript
// fingerprints must be byte-identical across reruns, and the shrinker
// in internal/simtest re-executes failing seeds expecting the same
// trace. A single time.Now-dependent branch or global-rand draw in a
// protocol package silently breaks all of that. Metrics-only timing
// sites carry //bvclint:allow nodeterminism annotations.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "flag wall-clock, global-RNG and process-identity entropy in protocol packages; " +
		"all behavior there must be a pure function of the run's seed",
	Run: runNoDeterminism,
}

// banned maps package path -> function name -> short reason. An empty
// function-name key of "*" bans every package-level function.
var nondetBanned = map[string]map[string]string{
	"time": {
		"Now":       "wall clock",
		"Since":     "wall clock",
		"Until":     "wall clock",
		"Tick":      "wall-clock ticker",
		"After":     "wall-clock timer",
		"AfterFunc": "wall-clock timer",
		"NewTimer":  "wall-clock timer",
		"NewTicker": "wall-clock ticker",
		"Sleep":     "wall-clock delay",
	},
	"os": {
		"Getpid":   "process identity",
		"Getppid":  "process identity",
		"Hostname": "host identity",
		"Environ":  "process environment",
	},
	"crypto/rand": {"*": "non-reproducible entropy"},
}

// Global math/rand draws (package-level funcs sharing the process-wide
// source) are nondeterministic across runs; explicit constructors
// (New, NewSource, ...) are fine here — seedflow checks their seeding.
func globalRandBan(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

func runNoDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgFunc(pass.TypesInfo, call)
			if path == "" {
				return true
			}
			if m, ok := nondetBanned[path]; ok {
				reason, hit := m[name]
				if !hit {
					reason, hit = m["*"]
				}
				if hit {
					pass.Reportf(call.Pos(),
						"nondeterministic call %s.%s (%s) in protocol package; derive behavior from the run's seed",
						path, name, reason)
				}
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && globalRandBan(name) {
				pass.Reportf(call.Pos(),
					"global %s.%s draws from the shared process-wide source; build an explicit rand.New(rand.NewSource(seed)) instead",
					path, name)
			}
			return true
		})
	}
	return nil
}
