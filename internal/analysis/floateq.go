package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags exact ==/!= between computed floating-point values in
// the geometry packages. The δ*(S) bounds of Table 1 (Theorems 9/12,
// Conjecture 1) are validated by predicates that must use an explicit
// tolerance (geom.Eps, vec.ApproxEqual, the `tol` parameters threaded
// through InRelaxedHull/InPolygon); an exact comparison that happens
// to pass on one machine's rounding is precisely the kind of silent
// nondeterminism the reproduction exists to rule out.
//
// Two comparisons stay legal, because they are exactness *decisions*
// rather than accidents:
//   - comparison against a compile-time constant (x == 0 division
//     guards, x != 1 clamps): the constant states the intent;
//   - comparisons inside designated tolerance/equality helpers, whose
//     entire job is to define equality (names matching Equal/Approx/
//     Eq/Near/Within, e.g. vec.Equal, vec.ApproxEqual).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag exact ==/!= on computed floats in geometry packages; use the tolerance helpers " +
		"(geom.Eps, vec.ApproxEqual) instead",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if toleranceHelper(fn.Name.Name) {
				return false // the helper defines equality; skip its body
			}
			ast.Inspect(fn, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(info.TypeOf(bin.X)) && !isFloat(info.TypeOf(bin.Y)) {
					return true
				}
				// A constant operand is a deliberate exactness claim.
				if isConst(info, bin.X) || isConst(info, bin.Y) {
					return true
				}
				pass.Reportf(bin.Pos(),
					"exact %s on computed float64 values; rounding differs across platforms — compare within a tolerance (geom.Eps / vec.ApproxEqual)",
					bin.Op)
				return true
			})
			return false
		})
	}
	return nil
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// toleranceHelper matches function names whose contract is to define
// (approximate or exact) equality.
func toleranceHelper(name string) bool {
	for _, frag := range []string{"Equal", "Approx", "Near", "Within", "SameFloat"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return name == "eq" || strings.HasSuffix(name, "Eq")
}
