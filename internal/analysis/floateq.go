package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq flags exact ==/!= between computed floating-point values in
// the geometry packages. The δ*(S) bounds of Table 1 (Theorems 9/12,
// Conjecture 1) are validated by predicates that must use an explicit
// tolerance (geom.Eps, vec.ApproxEqual, the `tol` parameters threaded
// through InRelaxedHull/InPolygon); an exact comparison that happens
// to pass on one machine's rounding is precisely the kind of silent
// nondeterminism the reproduction exists to rule out.
//
// Three comparisons stay legal, because they are exactness *decisions*
// rather than accidents:
//   - comparison against a compile-time constant (x == 0 division
//     guards, x != 1 clamps): the constant states the intent;
//   - comparisons inside designated tolerance/equality helpers, whose
//     entire job is to define equality (names matching Equal/Approx/
//     Eq/Near/Within, e.g. vec.Equal, vec.ApproxEqual);
//   - comparisons whose operand mentions a designated named tolerance
//     constant (geom.PrefilterMargin or its package-local alias
//     bboxMargin): `lo == hi+PrefilterMargin` is a margin comparison
//     spelled with == — the named constant states the slack the author
//     chose, which is exactly what this analyzer exists to demand.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flag exact ==/!= on computed floats in geometry packages; use the tolerance helpers " +
		"(geom.Eps, vec.ApproxEqual) instead",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if toleranceHelper(fn.Name.Name) {
				return false // the helper defines equality; skip its body
			}
			ast.Inspect(fn, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if !isFloat(info.TypeOf(bin.X)) && !isFloat(info.TypeOf(bin.Y)) {
					return true
				}
				// A constant operand is a deliberate exactness claim.
				if isConst(info, bin.X) || isConst(info, bin.Y) {
					return true
				}
				// An operand built from a named tolerance constant is a
				// margin comparison, not an accidental exact compare.
				if mentionsToleranceConst(info, bin.X) || mentionsToleranceConst(info, bin.Y) {
					return true
				}
				pass.Reportf(bin.Pos(),
					"exact %s on computed float64 values; rounding differs across platforms — compare within a tolerance (geom.Eps / vec.ApproxEqual)",
					bin.Op)
				return true
			})
			return false
		})
	}
	return nil
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// toleranceConstNames are the named slack constants of the geometry
// layer. A comparison that spells one of them out has already made the
// tolerance decision this analyzer polices; bboxMargin is the
// documented package-local alias of geom.PrefilterMargin in
// internal/relax.
var toleranceConstNames = map[string]bool{
	"PrefilterMargin": true,
	"bboxMargin":      true,
}

// mentionsToleranceConst reports whether the expression references one
// of the designated named tolerance constants. The identifier must
// resolve to a typed or untyped constant — a mere variable that happens
// to share the name does not state compile-time intent.
func mentionsToleranceConst(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !toleranceConstNames[id.Name] {
			return true
		}
		if _, isc := info.Uses[id].(*types.Const); isc {
			found = true
			return false
		}
		return true
	})
	return found
}

// toleranceHelper matches function names whose contract is to define
// (approximate or exact) equality.
func toleranceHelper(name string) bool {
	for _, frag := range []string{"Equal", "Approx", "Near", "Within", "SameFloat"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return name == "eq" || strings.HasSuffix(name, "Eq")
}
