// Package analysistest runs an analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want` comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (which the
// zero-dependency module deliberately does not import).
//
// A fixture file marks each expected diagnostic with a trailing
// comment on the offending line:
//
//	x := time.Now() // want `nondeterministic call time\.Now`
//
// The backquoted (or quoted) pattern is a regexp matched against the
// diagnostic message; several `want` patterns may share one comment:
//
//	a, b := f(), g() // want `first` `second`
//
// Unlike the upstream harness, the //bvclint:allow directive pipeline
// is always active, so fixtures can assert both suppression and the
// driver's own directive diagnostics (analyzer name "bvclint").
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"relaxedbvc/internal/analysis"
)

// Run loads testdata/src/<pkg> (relative to the test's working
// directory), type-checks it with imports resolved from compiled
// export data, applies the analyzer plus the directive pipeline, and
// reports any mismatch against the fixture's `want` comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	files, err := fixtureFiles(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	imp, err := analysis.ExportImporter(fset, ".", importsOf(t, files))
	if err != nil {
		t.Fatalf("analysistest: resolving fixture imports: %v", err)
	}
	loaded, err := analysis.TypeCheck(fset, pkg, files, imp)
	if err != nil {
		t.Fatalf("analysistest: type-checking %s: %v", dir, err)
	}
	diags, err := analysis.CheckPackage(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	checkWants(t, files, diags)
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go fixtures in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// importsOf parses just the import clauses of the fixture files.
func importsOf(t *testing.T, files []string) []string {
	t.Helper()
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// want is one expectation: a pattern that must match a diagnostic on
// its line.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	text    string
}

var wantRE = regexp.MustCompile("// want ((?:[`\"][^`\"]*[`\"]\\s*)+)")
var wantArgRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

func checkWants(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []want
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		for i, line := range strings.Split(string(b), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", f, i+1, arg[1], err)
				}
				wants = append(wants, want{file: f, line: i + 1, pattern: re, text: arg[1]})
			}
		}
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.line != d.Pos.Line || !sameFile(w.file, d.Pos.Filename) {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return filepath.Base(a) == filepath.Base(b)
	}
	return aa == bb
}
