package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SeedFlow checks that a function which accepts a seed actually
// threads that seed into every RNG it constructs. The simtest
// GenSpec/Sweep machinery, the fault substrate's hash-derived link
// patterns and the workload generators all promise "same seed, same
// run"; a `func f(seed int64)` that then calls rand.NewSource(42) or
// draws from the global source honors the signature but not the
// contract, and the bug only surfaces as an unreproducible failure
// months later.
//
// The analyzer is interprocedural within the package: it taints the
// seed parameters, propagates the taint through assignments AND
// through call edges of the package call graph (callgraph.go), and
// reports every RNG the function constructs — directly or through any
// chain of in-package helpers — whose seed derives from no seed
// parameter, plus any global math/rand draw (again, direct or through
// a helper) inside such a function. Helper summaries record which of
// their parameters reach an RNG constructor, so `r := newRNG(42)`
// inside a seed-taking function is a finding even though the
// rand.NewSource call lives in newRNG's body.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "functions taking a seed parameter must derive every RNG they construct from it",
	Run:  runSeedFlow,
}

// paramMask is a bitset over a function's parameters (by index).
type paramMask uint64

// rngSite is one RNG construction a function performs, transitively:
// either a rand.NewSource/NewPCG/NewChaCha8 call in its own body, or
// a call to an in-package function that (transitively) constructs one.
type rngSite struct {
	pos token.Pos // site to report in this function's body
	// origin is the ultimate constructor position; it keeps distinct
	// callee sites distinct when several compose onto one call site.
	origin token.Pos
	what   string // "math/rand.NewSource" or "call to newRNG"
	deps   paramMask
}

// flowSite is one global math/rand draw, transitively.
type flowSite struct {
	pos    token.Pos
	origin token.Pos
	what   string
}

// seedflowSummary is the per-function summary the fixpoint engine
// computes: both slices are pos/origin-sorted sets, so summaries grow
// monotonically and compare cheaply.
type seedflowSummary struct {
	rngs    []rngSite
	globals []flowSite
}

func (a seedflowSummary) equalTo(b seedflowSummary) bool {
	if len(a.rngs) != len(b.rngs) || len(a.globals) != len(b.globals) {
		return false
	}
	for i := range a.rngs {
		if a.rngs[i] != b.rngs[i] {
			return false
		}
	}
	for i := range a.globals {
		if a.globals[i] != b.globals[i] {
			return false
		}
	}
	return true
}

func runSeedFlow(pass *Pass) error {
	graph := BuildCallGraph(pass)
	store := NewSummaries(graph,
		func(node *FuncNode, get func(*types.Func) seedflowSummary) seedflowSummary {
			return computeSeedflowSummary(pass.TypesInfo, node, get)
		},
		seedflowSummary.equalTo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			seeds := seedParams(pass.TypesInfo, fn)
			if len(seeds) == 0 {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			seedMask := masksOf(obj, seeds)
			sum := store.Get(obj)
			for _, site := range sum.rngs {
				if site.deps&seedMask != 0 {
					continue
				}
				if strings.HasPrefix(site.what, "call to ") {
					pass.Reportf(site.pos,
						"%s constructs an RNG not derived from the function's seed parameter; replays of the same seed will diverge",
						site.what)
				} else {
					pass.Reportf(site.pos,
						"%s argument is not derived from the function's seed parameter; replays of the same seed will diverge",
						site.what)
				}
			}
			for _, site := range sum.globals {
				if strings.HasPrefix(site.what, "call to ") {
					pass.Reportf(site.pos,
						"%s draws from the global math/rand source inside a seed-taking function; thread the seed through instead",
						site.what)
				} else {
					pass.Reportf(site.pos,
						"global %s inside a seed-taking function ignores the seed parameter; use rand.New(rand.NewSource(seed))",
						site.what)
				}
			}
		}
	}
	return nil
}

// seedParams returns the objects of integer parameters whose name
// starts with "seed" (seed, seed0, seedBase, ...).
func seedParams(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if !strings.HasPrefix(strings.ToLower(name.Name), "seed") {
				continue
			}
			obj := info.ObjectOf(name)
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				seeds[obj] = true
			}
		}
	}
	return seeds
}

// masksOf converts a set of parameter objects into fn's paramMask.
func masksOf(fn *types.Func, objs map[types.Object]bool) paramMask {
	var mask paramMask
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		if objs[sig.Params().At(i)] {
			mask |= 1 << i
		}
	}
	return mask
}

// computeSeedflowSummary runs one forward taint pass over node's body:
// statements are visited in source order, which over-approximates
// enough for lint purposes. Every parameter starts tainted with its
// own bit; any variable assigned from a tainted expression inherits
// the union of the taints; RNG constructors and in-package calls
// record sites with the parameter set their seed derives from.
func computeSeedflowSummary(info *types.Info, node *FuncNode, get func(*types.Func) seedflowSummary) seedflowSummary {
	sig := node.Obj.Type().(*types.Signature)
	taint := map[types.Object]paramMask{}
	for i := 0; i < sig.Params().Len() && i < 64; i++ {
		taint[sig.Params().At(i)] = 1 << i
	}
	maskOf := func(e ast.Expr) paramMask {
		var m paramMask
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					m |= taint[obj]
				}
			}
			return true
		})
		return m
	}
	maskOfAll := func(exprs []ast.Expr) paramMask {
		var m paramMask
		for _, e := range exprs {
			m |= maskOf(e)
		}
		return m
	}

	// Index the resolved call sites by their CallExpr so the single
	// body walk below can compose callee summaries in source order.
	sites := make(map[*ast.CallExpr]CallSite, len(node.Calls))
	for _, cs := range node.Calls {
		sites[cs.Call] = cs
	}

	rngs := map[[2]token.Pos]rngSite{}
	globals := map[[2]token.Pos]flowSite{}
	addRNG := func(s rngSite) {
		key := [2]token.Pos{s.pos, s.origin}
		if old, ok := rngs[key]; ok {
			s.deps |= old.deps
		}
		rngs[key] = s
	}

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var m paramMask
				if len(n.Rhs) == len(n.Lhs) {
					m = maskOf(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					m = maskOf(n.Rhs[0])
				}
				if m != 0 {
					if obj := info.ObjectOf(id); obj != nil {
						taint[obj] |= m
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var m paramMask
				if len(n.Values) == len(n.Names) {
					m = maskOf(n.Values[i])
				} else if len(n.Values) == 1 {
					m = maskOf(n.Values[0])
				}
				if m != 0 {
					if obj := info.ObjectOf(name); obj != nil {
						taint[obj] |= m
					}
				}
			}
		case *ast.CallExpr:
			path, fname := pkgFunc(info, n)
			if path == "math/rand" || path == "math/rand/v2" {
				switch fname {
				case "NewSource", "NewPCG", "NewChaCha8":
					addRNG(rngSite{
						pos:    n.Pos(),
						origin: n.Pos(),
						what:   path + "." + fname,
						deps:   maskOfAll(n.Args),
					})
				case "New":
					// rand.New(src): the source construction is the
					// checked site.
				default:
					if globalRandBan(fname) {
						key := [2]token.Pos{n.Pos(), n.Pos()}
						globals[key] = flowSite{pos: n.Pos(), origin: n.Pos(), what: path + "." + fname}
					}
				}
				return true
			}
			// In-package callee: map its summary through the argument
			// taints. Callee parameter i's bit translates to the union
			// of taints of our argument i.
			cs, ok := sites[n]
			if !ok || cs.Callee == nil || cs.Dynamic {
				return true
			}
			callee := get(cs.Callee)
			if len(callee.rngs) == 0 && len(callee.globals) == 0 {
				return true
			}
			argMask := func(deps paramMask) paramMask {
				var m paramMask
				for i, arg := range n.Args {
					if i < 64 && deps&(1<<i) != 0 {
						m |= maskOf(arg)
					}
				}
				return m
			}
			for _, s := range callee.rngs {
				addRNG(rngSite{
					pos:    n.Pos(),
					origin: s.origin,
					what:   "call to " + cs.Callee.Name(),
					deps:   argMask(s.deps),
				})
			}
			for _, s := range callee.globals {
				key := [2]token.Pos{n.Pos(), s.origin}
				globals[key] = flowSite{pos: n.Pos(), origin: s.origin, what: "call to " + cs.Callee.Name()}
			}
		}
		return true
	})

	var sum seedflowSummary
	for _, s := range rngs {
		sum.rngs = append(sum.rngs, s)
	}
	for _, s := range globals {
		sum.globals = append(sum.globals, s)
	}
	sort.Slice(sum.rngs, func(i, j int) bool {
		a, b := sum.rngs[i], sum.rngs[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.origin < b.origin
	})
	sort.Slice(sum.globals, func(i, j int) bool {
		a, b := sum.globals[i], sum.globals[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.origin < b.origin
	})
	return sum
}
