package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow checks that a function which accepts a seed actually
// threads that seed into every RNG it constructs. The simtest
// GenSpec/Sweep machinery, the fault substrate's hash-derived link
// patterns and the workload generators all promise "same seed, same
// run"; a `func f(seed int64)` that then calls rand.NewSource(42) or
// draws from the global source honors the signature but not the
// contract, and the bug only surfaces as an unreproducible failure
// months later.
//
// The analyzer taints the seed parameters, propagates the taint
// through straight-line assignments, and reports rand.NewSource /
// rand.New / rand.NewPCG calls whose seed argument carries no taint,
// plus any global math/rand draw inside such a function.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "functions taking a seed parameter must derive every RNG they construct from it",
	Run:  runSeedFlow,
}

func runSeedFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			seeds := seedParams(pass.TypesInfo, fn)
			if len(seeds) == 0 {
				continue
			}
			checkSeedFlow(pass, fn, seeds)
		}
	}
	return nil
}

// seedParams returns the objects of integer parameters whose name
// starts with "seed" (seed, seed0, seedBase, ...).
func seedParams(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if !strings.HasPrefix(strings.ToLower(name.Name), "seed") {
				continue
			}
			obj := info.ObjectOf(name)
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				seeds[obj] = true
			}
		}
	}
	return seeds
}

func checkSeedFlow(pass *Pass, fn *ast.FuncDecl, tainted map[types.Object]bool) {
	info := pass.TypesInfo
	// One forward propagation pass: statements are visited in source
	// order, which over-approximates enough for lint purposes. Any
	// variable assigned from a tainted expression becomes tainted;
	// rand sources built from tainted expressions taint their targets.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && refersTo(info, rhs, tainted) {
					if obj := info.ObjectOf(id); obj != nil {
						tainted[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			path, name := pkgFunc(info, n)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			switch name {
			case "NewSource", "NewPCG", "NewChaCha8":
				if len(n.Args) > 0 && !anyRefersTo(info, n.Args, tainted) {
					pass.Reportf(n.Pos(),
						"%s.%s argument is not derived from the function's seed parameter; replays of the same seed will diverge",
						path, name)
				}
			case "New":
				// rand.New(src): fine — the source construction is the
				// checked site. rand.New with an inline untainted
				// NewSource is caught by the case above.
			default:
				if globalRandBan(name) {
					pass.Reportf(n.Pos(),
						"global %s.%s inside a seed-taking function ignores the seed parameter; use rand.New(rand.NewSource(seed))",
						path, name)
				}
			}
		}
		return true
	})
}

func anyRefersTo(info *types.Info, exprs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range exprs {
		if refersTo(info, e, objs) {
			return true
		}
	}
	return false
}
