package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// MetricLabel pins the metric-name discipline: every name passed to
// the internal/metrics registration surface must be a string literal
// matching the documented snake_case scheme. The bench-regression
// guard (scripts/benchguard.go), bvcbench's -metrics-out golden files
// and Snapshot.Diff all key on metric names; a computed or irregular
// name would produce snapshots that differ between builds and break
// bench.Compare silently.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc: "metric names passed to internal/metrics must be snake_case string literals " +
		"(keeps golden metrics files and bench.Compare stable)",
	Run: runMetricLabel,
}

// metricNamePattern is the documented scheme: lowercase snake_case
// segments, e.g. consensus_runs_total, batch_trial_seconds.
var metricNamePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// metricRegistrars are the internal/metrics functions and methods
// whose first argument is a metric name.
var metricRegistrars = map[string]bool{
	"Counter":          true,
	"Gauge":            true,
	"Histogram":        true,
	"DefaultCounter":   true,
	"DefaultGauge":     true,
	"DefaultHistogram": true,
	"RegisterFunc":     true,
}

func runMetricLabel(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !metricRegistrars[fn.Name()] {
				return true
			}
			if !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
				return true
			}
			name, isLit := stringLit(call.Args[0])
			if !isLit {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to metrics.%s must be a string literal so golden snapshots stay diffable", fn.Name())
				return true
			}
			if !metricNamePattern.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q violates the snake_case scheme (want %s)", name, metricNamePattern)
			}
			return true
		})
	}
	return nil
}
