package analysis_test

import (
	"path/filepath"
	"testing"

	"relaxedbvc/internal/analysis"
)

// TestLoadRealPackage exercises the export-data loader against an
// in-module package with both stdlib and in-module imports.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := analysis.Load("../..", "relaxedbvc/internal/sched")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "relaxedbvc/internal/sched" {
		t.Fatalf("want exactly relaxedbvc/internal/sched, got %v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
		t.Fatal("loaded package missing types or syntax")
	}
	if obj := p.Types.Scope().Lookup("ErrDeliveryViolated"); obj == nil {
		t.Fatal("expected sched.ErrDeliveryViolated in package scope")
	}
}

// TestRepoTreeClean is the same gate `make lint` enforces: the full
// module must produce zero findings once the committed exceptions file
// and the in-tree //bvclint:allow annotations are applied. It compiles
// the whole module via `go list -export`, so it is skipped in -short
// runs (CI runs it through the lint step anyway).
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; covered by `make lint` in CI")
	}
	exceptions, err := analysis.ParseExceptions(filepath.Join("..", "..", "lint", "exceptions.txt"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All(), exceptions)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
