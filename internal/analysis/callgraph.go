package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the framework: a
// package-level call graph plus a memoized, fixpoint-safe summary
// store. Analyzers that must follow a fact across function boundaries
// (seedflow's taint, ctxleak's spawned loops) build the graph once per
// pass and compute function summaries on demand; everything outside
// the current package (other modules' packages, the stdlib) stays a
// conservative unknown, which keeps the engine exact on the facts it
// does track and silent on the ones it cannot.

// CallSite is one call expression inside a function body, resolved as
// far as the package-level information allows.
type CallSite struct {
	Call *ast.CallExpr
	// Callee is the static callee: a package function, a concrete
	// method, or — for dynamic dispatch — the interface method itself.
	// Nil when the call goes through an unresolvable function value.
	Callee *types.Func
	// Dynamic marks interface-method dispatch; Impls then lists every
	// in-package concrete method that may be the runtime target.
	Dynamic bool
	Impls   []*types.Func
}

// FuncNode is one declared function (or method) of the package.
type FuncNode struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// CallGraph indexes every function declared in one package by its
// types object, with resolved outgoing call edges.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
	info  *types.Info
}

// NodeFor returns the graph node for fn, or nil when fn is not
// declared (with a body) in this package.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// BuildCallGraph constructs the package-level call graph for the
// pass's files. Three edge shapes beyond plain static calls are
// resolved:
//
//   - method calls with a concrete receiver (the usual case);
//   - calls through a local function-typed variable that is bound
//     exactly once to a method value or function identifier
//     (f := t.handle; ...; f(x));
//   - interface dispatch: the edge records the interface method and
//     every in-package concrete type implementing the interface, so an
//     analyzer can fan out over the possible targets (e.g. the three
//     Transport backends).
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*FuncNode{}, info: pass.TypesInfo}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Nodes[obj] = &FuncNode{Obj: obj, Decl: fd}
		}
	}
	impls := packageMethodIndex(pass.Pkg)
	for _, node := range g.Nodes {
		bindings := localFuncBindings(pass.TypesInfo, node.Decl)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			site := resolveCall(pass.TypesInfo, call, bindings)
			if site.Callee != nil {
				if site.Dynamic {
					site.Impls = impls.implementationsOf(site.Callee)
				}
				node.Calls = append(node.Calls, site)
			}
			return true
		})
	}
	return g
}

// resolveCall finds the static callee of one call expression.
func resolveCall(info *types.Info, call *ast.CallExpr, bindings map[types.Object]*types.Func) CallSite {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return CallSite{Call: call, Callee: f, Dynamic: isInterfaceMethod(f)}
		}
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return CallSite{Call: call, Callee: obj}
		case *types.Var:
			// Call through a function-typed variable: resolvable only
			// when the variable is bound exactly once to a known
			// function (method value or function identifier).
			if target, ok := bindings[obj]; ok {
				return CallSite{Call: call, Callee: target, Dynamic: isInterfaceMethod(target)}
			}
		}
	}
	return CallSite{Call: call}
}

// isInterfaceMethod reports whether f is declared on an interface
// type, i.e. a call through it is dynamic dispatch.
func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// localFuncBindings maps single-assignment function-typed locals to
// the *types.Func they are bound to. A variable assigned more than
// once, or assigned anything unresolvable (a func literal, a call
// result), is dropped — calls through it stay unresolved rather than
// wrong.
func localFuncBindings(info *types.Info, decl *ast.FuncDecl) map[types.Object]*types.Func {
	bindings := map[types.Object]*types.Func{}
	poisoned := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		var target *types.Func
		switch r := ast.Unparen(rhs).(type) {
		case *ast.SelectorExpr:
			target, _ = info.Uses[r.Sel].(*types.Func)
		case *ast.Ident:
			target, _ = info.Uses[r].(*types.Func)
		}
		if target == nil {
			poisoned[obj] = true
			delete(bindings, obj)
			return
		}
		if prev, ok := bindings[obj]; ok && prev != target {
			poisoned[obj] = true
			delete(bindings, obj)
			return
		}
		if !poisoned[obj] {
			bindings[obj] = target
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return bindings
}

// methodIndex maps interface methods to the package's concrete
// implementations.
type methodIndex struct {
	// concrete lists every named non-interface type declared in the
	// package (value and pointer forms are derived on lookup).
	concrete []*types.Named
}

// packageMethodIndex collects the package's named concrete types once;
// implementationsOf then answers per interface method.
func packageMethodIndex(pkg *types.Package) *methodIndex {
	idx := &methodIndex{}
	if pkg == nil {
		return idx
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		idx.concrete = append(idx.concrete, named)
	}
	return idx
}

// implementationsOf returns the in-package concrete methods that a
// dynamic call to interface method m may dispatch to, in stable
// (type-name) order.
func (idx *methodIndex) implementationsOf(m *types.Func) []*types.Func {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range idx.concrete {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// --- summary store ---

// Summaries memoizes one per-function summary of type T over a call
// graph, computing each on demand. Recursive call cycles are handled
// by seeding every in-flight function with the zero summary and
// iterating the cycle to a fixpoint: the compute callback must be
// monotone (re-running it with richer callee summaries may only add
// facts), which every analyzer summary here satisfies because facts
// are unioned sets over the finite site/parameter space.
type Summaries[T any] struct {
	graph    *CallGraph
	compute  func(node *FuncNode, get func(*types.Func) T) T
	equal    func(a, b T) bool
	done     map[*types.Func]T
	inFlight map[*types.Func]T
}

// NewSummaries returns a summary store over g. compute builds the
// summary for one function, pulling callee summaries through get; get
// returns the zero T for functions outside the package. equal decides
// fixpoint convergence for recursive cycles.
func NewSummaries[T any](g *CallGraph, compute func(node *FuncNode, get func(*types.Func) T) T, equal func(a, b T) bool) *Summaries[T] {
	return &Summaries[T]{
		graph:    g,
		compute:  compute,
		equal:    equal,
		done:     map[*types.Func]T{},
		inFlight: map[*types.Func]T{},
	}
}

// Get returns fn's summary, computing (and memoizing) it as needed.
func (s *Summaries[T]) Get(fn *types.Func) T {
	var zero T
	if fn == nil {
		return zero
	}
	if v, ok := s.done[fn]; ok {
		return v
	}
	node := s.graph.NodeFor(fn)
	if node == nil {
		return zero // outside the package: conservative unknown
	}
	if v, ok := s.inFlight[fn]; ok {
		return v // recursive cycle: current approximation
	}
	s.inFlight[fn] = zero
	// Iterate to a fixpoint: recursion feeds the previous approximation
	// back through get, so each round may only add facts; the finite
	// fact space guarantees termination. The iteration cap is a
	// backstop against a non-monotone compute, not a tuning knob.
	cur := zero
	for range 64 {
		next := s.compute(node, s.Get)
		if s.equal(next, cur) {
			break
		}
		cur = next
		s.inFlight[fn] = cur
	}
	delete(s.inFlight, fn)
	s.done[fn] = cur
	return cur
}
