package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafe guards the three mutex mistakes that turn a rare
// interleaving into a deadlock or a race in the concurrency-heavy
// packages (the transport backends, the soak coordinator, the batch
// pool):
//
//  1. a Lock() whose matching Unlock() is not deferred while a return
//     (or explicit panic) sits between them — the early path leaves
//     the mutex held forever;
//  2. a lock value copied: by-value receiver or parameter of a struct
//     containing a sync.Mutex/RWMutex, or an assignment that copies
//     such a struct — the copy guards nothing;
//  3. inconsistent lock ORDER: two functions of the package acquiring
//     the same pair of locks in opposite nesting orders, the classic
//     AB/BA deadlock. Lock identity is the type-qualified field (or
//     package variable) name, so the order is audited across all
//     backends at once.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc: "mutexes must be released on every path, never copied, " +
		"and nested in one package-wide order",
	Run: runLockSafe,
}

// lockAcq is one Lock/RLock call with its resolution.
type lockAcq struct {
	call *ast.CallExpr
	key  string // type-qualified identity, e.g. "TCP.mu" or pkg var "poolMu"
	obj  types.Object
	rw   bool // RLock/RUnlock pairing
}

func runLockSafe(pass *Pass) error {
	// Per-function path checks + package-wide order graph.
	type edge struct {
		outer, inner string
	}
	firstEdge := map[edge]token.Pos{}
	var edges []edge
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockCopies(pass, fn)
			for _, body := range funcBodies(fn) {
				checkLockPaths(pass, body)
				for _, e := range lockOrderEdges(pass, body) {
					ee := edge{e.outer, e.inner}
					if _, ok := firstEdge[ee]; !ok {
						firstEdge[ee] = e.pos
						edges = append(edges, ee)
					}
				}
			}
		}
	}
	// Report AB/BA pairs once, at the lexically later edge.
	for _, e := range edges {
		rev := edge{e.inner, e.outer}
		revPos, ok := firstEdge[rev]
		if !ok || e.outer >= e.inner { // report each unordered pair once
			continue
		}
		pos, other := firstEdge[e], revPos
		if other < pos {
			pos, other = other, pos
		}
		pass.Reportf(other,
			"inconsistent lock order: %s and %s are acquired in opposite orders (other order at %s); nest them identically everywhere or a rare interleaving deadlocks",
			e.outer, e.inner, pass.Fset.Position(pos))
	}
	return nil
}

// funcBodies returns fn's body plus every function-literal body inside
// it, each analyzed as its own execution context (a goroutine closure
// must balance its own locks).
func funcBodies(fn *ast.FuncDecl) []*ast.BlockStmt {
	bodies := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, fl.Body)
		}
		return true
	})
	return bodies
}

// lockMethod resolves a call of the form x.Lock()/x.Unlock()/... where
// x is (or embeds) a sync.Mutex or sync.RWMutex. It returns the
// method name and the lock's identity.
func lockMethod(pass *Pass, call *ast.CallExpr) (method string, acq lockAcq, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", lockAcq{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", lockAcq{}, false
	}
	f, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", lockAcq{}, false
	}
	key, obj := lockIdentity(pass.TypesInfo, sel.X)
	if key == "" {
		return "", lockAcq{}, false
	}
	rw := sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock" || sel.Sel.Name == "TryRLock"
	return sel.Sel.Name, lockAcq{call: call, key: key, obj: obj, rw: rw}, true
}

// lockIdentity names the lock: a struct field becomes "Type.field"
// (receiver-independent, so TCP.mu in two methods is one lock), a
// plain variable its declared name.
func lockIdentity(info *types.Info, e ast.Expr) (string, types.Object) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		obj := info.ObjectOf(e.Sel)
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			if base := selBaseType(info, e.X); base != "" {
				return base + "." + e.Sel.Name, obj
			}
		}
		if obj != nil {
			return e.Sel.Name, obj
		}
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return e.Name, obj
		}
	}
	return "", nil
}

// selBaseType names the struct type an accessed field belongs to.
func selBaseType(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkLockPaths flags Lock() calls in body whose release is neither
// deferred nor reached before an intervening return/panic.
func checkLockPaths(pass *Pass, body *ast.BlockStmt) {
	type site struct {
		pos token.Pos
		key string
		rw  bool
	}
	var locks, unlocks, deferred []site
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false // separate context, analyzed on its own
			}
		case *ast.DeferStmt:
			if m, acq, ok := lockMethod(pass, n.Call); ok && (m == "Unlock" || m == "RUnlock") {
				deferred = append(deferred, site{n.Call.Pos(), acq.key, acq.rw})
			}
			return false
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					returns = append(returns, n.Pos())
					return true
				}
			}
			m, acq, ok := lockMethod(pass, n)
			if !ok {
				return true
			}
			switch m {
			case "Lock", "RLock":
				locks = append(locks, site{n.Pos(), acq.key, acq.rw})
			case "Unlock", "RUnlock":
				unlocks = append(unlocks, site{n.Pos(), acq.key, acq.rw})
			}
		}
		return true
	})
	isDeferred := func(l site) bool {
		for _, d := range deferred {
			if d.key == l.key && d.rw == l.rw {
				return true
			}
		}
		return false
	}
	for _, l := range locks {
		if isDeferred(l) {
			continue
		}
		// Nearest explicit release after this acquire.
		var release token.Pos = -1
		for _, u := range unlocks {
			if u.key == l.key && u.rw == l.rw && u.pos > l.pos && (release < 0 || u.pos < release) {
				release = u.pos
			}
		}
		if release < 0 {
			pass.Reportf(l.pos,
				"%s is locked but never released in this function (and the unlock is not deferred); every path out leaves it held", l.key)
			continue
		}
		for _, r := range returns {
			if r > l.pos && r < release {
				pass.Reportf(l.pos,
					"%s is not released on the return/panic path at %s; defer the unlock or release before returning",
					l.key, pass.Fset.Position(r))
				break
			}
		}
	}
}

// lockOrderEdge is one observed nesting: outer held while inner is
// acquired.
type lockOrderEdge struct {
	outer, inner string
	pos          token.Pos
}

// lockOrderEdges walks body in source order maintaining the set of
// held locks (defer-released locks stay held to the end, matching
// runtime behavior).
func lockOrderEdges(pass *Pass, body *ast.BlockStmt) []lockOrderEdge {
	var held []string // acquisition order
	var edges []lockOrderEdge
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.DeferStmt:
			return false // deferred unlocks release at exit, not here
		case *ast.CallExpr:
			m, acq, ok := lockMethod(pass, n)
			if !ok {
				return true
			}
			switch m {
			case "Lock", "RLock", "TryLock", "TryRLock":
				for _, outer := range held {
					if outer != acq.key {
						edges = append(edges, lockOrderEdge{outer: outer, inner: acq.key, pos: n.Pos()})
					}
				}
				held = append(held, acq.key)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == acq.key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	return edges
}

// checkLockCopies flags by-value receivers/parameters of (and
// assignments copying) struct types that contain a mutex.
func checkLockCopies(pass *Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies %s, which contains a mutex; the copy guards nothing — use a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			if t := fieldValueType(pass.TypesInfo, field); t != nil && containsMutex(t, 0) {
				report(field.Pos(), "by-value receiver", t)
			}
		}
	}
	for _, field := range fn.Type.Params.List {
		if t := fieldValueType(pass.TypesInfo, field); t != nil && containsMutex(t, 0) {
			report(field.Pos(), "by-value parameter", t)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			tv, ok := pass.TypesInfo.Types[rhs]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			// Copying an existing value (deref, variable, field) of a
			// mutex-bearing struct; fresh composite literals are fine.
			switch ast.Unparen(rhs).(type) {
			case *ast.CompositeLit, *ast.CallExpr:
				continue
			}
			if containsMutex(tv.Type, 0) {
				report(as.Lhs[i].Pos(), fmt.Sprintf("assignment of %s", describeExpr(ast.Unparen(rhs))), tv.Type)
			}
		}
		return true
	})
}

// fieldValueType returns the field's type when it is a non-pointer
// named/struct type, nil otherwise.
func fieldValueType(info *types.Info, field *ast.Field) types.Type {
	tv, ok := info.Types[field.Type]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	return tv.Type
}

// containsMutex reports whether t is, or (transitively, through
// embedded value fields) contains, a sync.Mutex or sync.RWMutex.
func containsMutex(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if containsMutex(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}
