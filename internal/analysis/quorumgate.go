package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// QuorumGate enforces that every quorum comparison in the protocol
// packages goes through a named threshold helper instead of inlining
// the arithmetic at the comparison site. The resilience bounds of
// Xiang–Vaidya (n >= max(3f+1, (d+1)f+1)) and the BVAL/bin_values/AUX
// quorums of the ACS layer (f+1, 2f+1, n-f) are exactly the constants
// a refactor gets wrong by one — and a `cnt >= 2*f` that should have
// been `cnt >= 2*f+1` admits a Byzantine-controlled quorum while every
// test at small n still passes. Requiring `cnt >= binValuesQuorum(f)`
// means each bound has one audited definition with the theorem it
// comes from, and the diff that changes it is one line in one place.
//
// The rule: a comparison operand may be a plain value or a call, but
// not an arithmetic expression (+ - * /) whose leaves include an
// n/f/d-named identifier or field (n, f, d, case-insensitive; fields
// like cfg.N or a.f count). `cnt >= a.f+1` is a finding;
// `cnt >= bvalRelayQuorum(a.f)` and `i < cfg.N` are not. Functions
// whose name marks them as the threshold definition (containing
// "quorum" or "threshold") are exempt — a boolean helper like
// echoQuorum compares inline by design, and its body is the single
// audited place the rule drives everything else toward.
var QuorumGate = &Analyzer{
	Name: "quorumgate",
	Doc: "quorum comparisons must use named threshold helpers derived from n/f/d, " +
		"not arithmetic inlined at the comparison site",
	Run: runQuorumGate,
}

func runQuorumGate(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && thresholdHelper(fn.Name.Name) {
				return false // the helper body IS the audited definition
			}
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(cmp.Op) {
				return true
			}
			for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
				if site := inlineThresholdArith(pass.TypesInfo, operand); site != nil {
					pass.Reportf(cmp.Pos(),
						"quorum comparison inlines arithmetic on %s; name the threshold in a helper (e.g. func xQuorum(n, f int) int) so every quorum traces to one audited definition",
						describeExpr(site))
					break // one diagnostic per comparison
				}
			}
			return true
		})
	}
	return nil
}

// thresholdHelper matches function names whose contract is to define a
// quorum or threshold; their bodies hold the inline arithmetic the
// analyzer bans everywhere else.
func thresholdHelper(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "quorum") || strings.Contains(l, "threshold")
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// inlineThresholdArith returns the offending arithmetic subexpression
// when e contains integer arithmetic over an n/f/d-named symbol, nil
// otherwise. The walk does not descend into call arguments: a call is
// a named abstraction, which is exactly what the analyzer asks for.
func inlineThresholdArith(info *types.Info, e ast.Expr) *ast.BinaryExpr {
	var found *ast.BinaryExpr
	var visit func(ast.Expr)
	visit = func(e ast.Expr) {
		if found != nil {
			return
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if isArith(e.Op) && isIntExpr(info, e) && containsThresholdSymbol(e) {
				found = e
				return
			}
			visit(e.X)
			visit(e.Y)
		case *ast.UnaryExpr:
			visit(e.X)
		case *ast.StarExpr:
			visit(e.X)
		}
		// Calls, selectors, identifiers, literals, indexes: named (or
		// atomic) values — fine as comparison operands.
	}
	visit(e)
	return found
}

func isArith(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM:
		return true
	}
	return false
}

func isIntExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// containsThresholdSymbol reports whether the expression tree holds an
// identifier or field selector whose (base) name is n, f or d in any
// case — the resilience parameters of every protocol config here.
func containsThresholdSymbol(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		var name string
		switch n := n.(type) {
		case *ast.SelectorExpr:
			name = n.Sel.Name
		case *ast.Ident:
			name = n.Name
		default:
			return true
		}
		switch strings.ToLower(name) {
		case "n", "f", "d":
			found = true
			return false
		}
		return true
	})
	return found
}

// describeExpr renders a short source-like form of the expression for
// the diagnostic message.
func describeExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return describeExpr(e.X) + e.Op.String() + describeExpr(e.Y)
	case *ast.ParenExpr:
		return "(" + describeExpr(e.X) + ")"
	case *ast.SelectorExpr:
		return describeExpr(e.X) + "." + e.Sel.Name
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return describeExpr(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return describeExpr(e.X) + "[...]"
	case *ast.UnaryExpr:
		return e.Op.String() + describeExpr(e.X)
	case *ast.StarExpr:
		return "*" + describeExpr(e.X)
	default:
		return "?"
	}
}
