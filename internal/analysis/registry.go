package analysis

import "strings"

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		MapOrder,
		ErrWrap,
		FloatEq,
		SeedFlow,
		MetricLabel,
		TransportErr,
	}
}

// ByName resolves an analyzer by its directive name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// DefaultScope maps each analyzer to the package-path suffixes it
// applies to when run over the repo tree (empty slice = every
// package). Scoping lives in the driver, not the analyzers, so the
// analysistest fixtures — whose import paths are arbitrary — exercise
// the passes directly.
var DefaultScope = map[string][]string{
	// Protocol packages: everything that participates in a replayed
	// execution transcript.
	NoDeterminism.Name: {
		"internal/consensus", "internal/broadcast", "internal/sched", "internal/adversary",
	},
	// Protocol + geometry: map order leaks into transcripts via
	// message emission and into Table 1 numbers via float sums.
	MapOrder.Name: {
		"internal/consensus", "internal/broadcast", "internal/sched", "internal/adversary",
		"internal/geom", "internal/lp", "internal/minimax", "internal/relax",
		"internal/simplexgeo", "internal/tverberg", "internal/vec",
	},
	// The errors.Is contract is declared on the consensus/sched
	// surface (plus the facade and batch engine that re-wrap them).
	ErrWrap.Name: {
		"internal/consensus", "internal/sched", "internal/batch", "relaxedbvc",
	},
	// Exact-vs-tolerance float discipline in the geometry kernels
	// validating the delta*(S) bounds.
	FloatEq.Name: {
		"internal/geom", "internal/lp", "internal/minimax", "internal/relax",
	},
	SeedFlow.Name:    nil, // module-wide
	MetricLabel.Name: nil, // module-wide
	// The message plane's single-root error chain: every transport
	// failure must satisfy errors.Is(err, transport.ErrTransport).
	TransportErr.Name: {
		"internal/transport",
	},
}

// InScope reports whether analyzer a applies to the package path.
func InScope(a *Analyzer, pkgPath string) bool {
	suffixes := DefaultScope[a.Name]
	if len(suffixes) == 0 {
		return true
	}
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
