package analysis

import "strings"

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		MapOrder,
		ErrWrap,
		FloatEq,
		SeedFlow,
		MetricLabel,
		TransportErr,
		QuorumGate,
		LockSafe,
		CtxLeak,
		AtomicMix,
		ChanLife,
	}
}

// ByName resolves an analyzer by its directive name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// DefaultScope maps each analyzer to the package-path suffixes it
// applies to when run over the repo tree (empty slice = every
// package). Scoping lives in the driver, not the analyzers, so the
// analysistest fixtures — whose import paths are arbitrary — exercise
// the passes directly.
var DefaultScope = map[string][]string{
	// Protocol packages: everything that participates in a replayed
	// execution transcript.
	NoDeterminism.Name: {
		"internal/consensus", "internal/broadcast", "internal/sched", "internal/adversary",
	},
	// Protocol + geometry: map order leaks into transcripts via
	// message emission and into Table 1 numbers via float sums.
	MapOrder.Name: {
		"internal/consensus", "internal/broadcast", "internal/sched", "internal/adversary",
		"internal/geom", "internal/lp", "internal/minimax", "internal/relax",
		"internal/simplexgeo", "internal/tverberg", "internal/vec",
	},
	// The errors.Is contract is declared on the consensus/sched
	// surface (plus the facade and batch engine that re-wrap them).
	ErrWrap.Name: {
		"internal/consensus", "internal/sched", "internal/batch", "relaxedbvc",
	},
	// Exact-vs-tolerance float discipline in the geometry kernels
	// validating the delta*(S) bounds.
	FloatEq.Name: {
		"internal/geom", "internal/lp", "internal/minimax", "internal/relax",
	},
	SeedFlow.Name:    nil, // module-wide
	MetricLabel.Name: nil, // module-wide
	// The message plane's single-root error chain: every transport
	// failure must satisfy errors.Is(err, transport.ErrTransport).
	TransportErr.Name: {
		"internal/transport",
	},
	// Quorum thresholds: every BVAL/AUX/readiness/resilience comparison
	// in the protocol layers must trace to a named helper.
	QuorumGate.Name: {
		"internal/acs", "internal/broadcast", "internal/consensus",
	},
	// Concurrency-heavy packages: the transport backends, the soak
	// coordinator/worker plane, the batch pool, and the shared caches
	// and registries they drain into.
	LockSafe.Name: {
		"internal/transport", "internal/soak", "internal/acs", "internal/batch",
		"internal/par", "internal/memo", "internal/metrics", "internal/trace",
		"internal/tverberg",
	},
	CtxLeak.Name: {
		"internal/transport", "internal/soak", "internal/acs", "internal/batch",
		"internal/par", "internal/sched",
	},
	AtomicMix.Name: nil, // module-wide
	ChanLife.Name: {
		"internal/transport", "internal/soak", "internal/acs", "internal/batch",
		"internal/par", "internal/sched",
	},
}

// StrictExtraScope widens DefaultScope for `bvclint -strict` (the
// `make lint-strict` target): the concurrency and protocol analyzers
// also sweep the binaries and the CI guard scripts, which sit outside
// DefaultScope because their violations cannot corrupt a transcript —
// but can still deadlock a node.
var StrictExtraScope = map[string][]string{
	QuorumGate.Name: {"cmd/bvcnode", "cmd/bvcsoak", "cmd/bvcbench", "cmd/bvcfuzz", "cmd/bvcsim", "scripts"},
	LockSafe.Name:   {"cmd/bvcnode", "cmd/bvcsoak", "cmd/bvcbench", "cmd/bvcfuzz", "cmd/bvcsim", "scripts"},
	CtxLeak.Name:    {"cmd/bvcnode", "cmd/bvcsoak", "cmd/bvcbench", "cmd/bvcfuzz", "cmd/bvcsim", "scripts"},
	ChanLife.Name:   {"cmd/bvcnode", "cmd/bvcsoak", "cmd/bvcbench", "cmd/bvcfuzz", "cmd/bvcsim", "scripts"},
}

// InScope reports whether analyzer a applies to the package path.
func InScope(a *Analyzer, pkgPath string) bool {
	suffixes := DefaultScope[a.Name]
	if len(suffixes) == 0 {
		return true
	}
	return matchSuffix(suffixes, pkgPath)
}

// InScopeStrict is InScope plus the StrictExtraScope widening.
func InScopeStrict(a *Analyzer, pkgPath string) bool {
	return InScope(a, pkgPath) || matchSuffix(StrictExtraScope[a.Name], pkgPath)
}

func matchSuffix(suffixes []string, pkgPath string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}
