package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags struct fields accessed both through sync/atomic
// function calls (atomic.AddInt64(&s.n, 1)) and through plain
// reads/writes (s.n++ or x := s.n) anywhere in the package. Mixing the
// two silently downgrades every atomic site: the plain access races
// with the atomic one and the race detector only catches it on the
// unlucky schedule. The modern typed atomics (atomic.Int64 and
// friends) make the mistake impossible — which is why this repo uses
// them — so any hit here is either legacy style to migrate or a
// genuine race.
//
// The whole package is one analysis unit: the atomic accesses are
// typically in hot methods and the plain ones in Stats()/String()
// helpers three files away, so a per-function view cannot see the mix.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never also be read or written plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	atomicVia := map[types.Object]string{}     // field -> first atomic fn seen
	atomicArgs := map[*ast.SelectorExpr]bool{} // the &x.f exprs inside atomic calls
	plainSites := map[types.Object][]token.Pos{}

	// First pass: record the &field arguments of sync/atomic calls.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name := pkgFunc(pass.TypesInfo, call)
			if path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(sel.Sel)
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					if _, seen := atomicVia[obj]; !seen {
						atomicVia[obj] = "atomic." + name
					}
					atomicArgs[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicVia) == 0 {
		return nil
	}

	// Second pass: any other selector resolving to one of those fields
	// is a plain access. Composite-literal field keys (pre-publication
	// initialization of a fresh value) are exempt.
	record := func(sel *ast.SelectorExpr) {
		if atomicArgs[sel] {
			return
		}
		obj := pass.TypesInfo.ObjectOf(sel.Sel)
		if obj == nil {
			return
		}
		if _, tracked := atomicVia[obj]; tracked {
			plainSites[obj] = append(plainSites[obj], sel.Pos())
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				// Skip the key (field name); still visit the value side.
				ast.Inspect(n.Value, func(m ast.Node) bool {
					if sel, ok := m.(*ast.SelectorExpr); ok {
						record(sel)
					}
					return true
				})
				return false
			case *ast.SelectorExpr:
				record(n)
			}
			return true
		})
	}

	var objs []types.Object
	for obj := range plainSites {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		for _, pos := range plainSites[obj] {
			pass.Reportf(pos,
				"field %s is accessed with %s elsewhere in the package but read/written plainly here; every access must go through sync/atomic (or migrate the field to a typed atomic)",
				obj.Name(), atomicVia[obj])
		}
	}
	return nil
}
