package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Src       map[string][]byte
}

// Load resolves patterns (e.g. "./...") with the go tool from dir,
// parses and type-checks every matched package, and returns them in
// go-list order. Dependencies — including in-module ones and the
// standard library — are imported from compiled export data rather
// than re-type-checked from source, which `go list -export` produces
// as a side effect; only the matched packages themselves get syntax
// trees. This keeps the loader dependency-free (no golang.org/x/tools)
// while still giving analyzers full types.Info.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	var targets []*listPkg
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly && !m.Standard {
			targets = append(targets, m)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, m := range targets {
		if m.Err != nil {
			return nil, fmt.Errorf("load %s: %s", m.ImportPath, m.Err.Err)
		}
		var files []string
		for _, f := range m.GoFiles {
			files = append(files, filepath.Join(m.Dir, f))
		}
		pkg, err := TypeCheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses the given files and type-checks them as one package
// whose imports are resolved by imp.
func TypeCheck(fset *token.FileSet, pkgPath string, files []string, imp types.Importer) (*Package, error) {
	src := make(map[string][]byte, len(files))
	var syntax []*ast.File
	for _, name := range files {
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, b, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		src[name] = b
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
		Src:       src,
	}, nil
}

// ExportImporter returns a types.Importer that resolves the given
// import paths (and all their dependencies) from compiled export data
// produced by `go list -export` run in dir. The analysistest harness
// uses it to type-check fixture files that live under testdata and so
// cannot be loaded as module packages themselves.
func ExportImporter(fset *token.FileSet, dir string, importPaths []string) (types.Importer, error) {
	if len(importPaths) == 0 {
		return exportImporter(fset, nil), nil
	}
	metas, err := goList(dir, importPaths...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}
	return exportImporter(fset, exports), nil
}

func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Err        *struct{ Err string } `json:"Error"`
}

func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPkg
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
