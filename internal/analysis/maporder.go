package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over a map whose body does work that
// observes iteration order: sending messages, appending anything but
// the bare key to a slice that outlives the loop, or accumulating
// floating-point values. Go randomizes map iteration order per run, so
// any of these makes protocol transcripts — and, through non-
// associative float addition, even the *numeric results* the Table 1
// δ*(S) validation compares — differ between replays of the same seed.
//
// The one blessed shape is the collect-keys idiom
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//
// which the analyzer recognizes (appending exactly the key variable)
// and leaves alone; everything downstream of the sort is ordered.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive work (message emission, escaping appends, float accumulation) " +
		"inside `for range` over a map; iterate sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	lo, hi := rng.Body.Pos(), rng.Body.End()
	keyObj := rangeVarObj(info, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside `for range` over a map: receiver observes map iteration order; iterate sorted keys")
		case *ast.CallExpr:
			if f := calleeFunc(info, n); f != nil && orderSensitiveCallee(f.Name()) {
				pass.Reportf(n.Pos(), "%s call inside `for range` over a map emits in map iteration order; iterate sorted keys", f.Name())
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, n, lo, hi, keyObj)
		}
		return true
	})
}

// orderSensitiveCallee matches method names whose invocation publishes
// something externally visible in call order (the sched/broadcast
// message-emission surface).
func orderSensitiveCallee(name string) bool {
	switch name {
	case "Send", "Broadcast", "Deliver", "Emit", "Enqueue", "Publish":
		return true
	}
	return false
}

func checkMapRangeAssign(pass *Pass, as *ast.AssignStmt, lo, hi token.Pos, keyObj types.Object) {
	info := pass.TypesInfo
	// Float accumulation: x op= e, or x = x + e, with x declared
	// outside the loop and of floating-point type. Addition order
	// changes the rounding, so the sum differs between replays.
	accum := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accum = true
	case token.ASSIGN:
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
				if lid, ok := as.Lhs[0].(*ast.Ident); ok {
					objs := map[types.Object]bool{info.ObjectOf(lid): true}
					accum = refersTo(info, bin, objs)
				}
			}
		}
	}
	if accum {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && isFloat(info.TypeOf(id)) && declaredOutside(info, id, lo, hi) {
			pass.Reportf(as.Pos(), "floating-point accumulation into %q inside `for range` over a map: sum depends on iteration order; iterate sorted keys", id.Name)
			return
		}
	}
	// Escaping append: s = append(s, e...) where s is declared outside
	// the loop and e is not just the range key (collect-keys idiom).
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		dst, ok := as.Lhs[i].(*ast.Ident)
		if !ok || !declaredOutside(info, dst, lo, hi) {
			continue
		}
		if keysOnlyAppend(info, call, keyObj) {
			continue
		}
		pass.Reportf(call.Pos(), "append to %q (declared outside the loop) inside `for range` over a map records map iteration order; collect and sort keys first", dst.Name)
	}
}

func rangeVarObj(info *types.Info, key ast.Expr) types.Object {
	id, ok := key.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// keysOnlyAppend reports whether every appended element is exactly the
// range key variable — the blessed collect-then-sort idiom.
func keysOnlyAppend(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || info.ObjectOf(id) != keyObj {
			return false
		}
	}
	return true
}
