package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// typeCheckSrc builds a Pass from one in-memory source file, the same
// shape the loader produces, so the call-graph tests need no fixture
// directory or `go list` round-trip.
func typeCheckSrc(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("cgtest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Pass{
		Fset:      fset,
		Files:     []*ast.File{f},
		Pkg:       pkg,
		TypesInfo: info,
		Src:       map[string][]byte{"a.go": []byte(src)},
	}
}

func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for fn, node := range g.Nodes {
		if fn.Name() == name {
			return node
		}
	}
	t.Fatalf("no node %q in call graph", name)
	return nil
}

func calleeNames(node *FuncNode) []string {
	var out []string
	for _, cs := range node.Calls {
		out = append(out, cs.Callee.Name())
	}
	sort.Strings(out)
	return out
}

func TestCallGraphStaticCalls(t *testing.T) {
	pass := typeCheckSrc(t, `package cgtest
func a() { b(); c() }
func b() { c() }
func c() {}
`)
	g := BuildCallGraph(pass)
	if got := calleeNames(nodeByName(t, g, "a")); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("a's callees = %v, want [b c]", got)
	}
	for _, cs := range nodeByName(t, g, "a").Calls {
		if cs.Dynamic {
			t.Errorf("static call to %s marked dynamic", cs.Callee.Name())
		}
	}
}

// A function value bound exactly once to a method value resolves to
// the concrete method; rebinding poisons the variable and the call
// stays (correctly) unresolved.
func TestCallGraphMethodValues(t *testing.T) {
	pass := typeCheckSrc(t, `package cgtest
type T struct{}
func (t *T) handle() {}
func (t *T) other() {}
func bound(t *T) {
	h := t.handle
	h()
}
func rebound(t *T) {
	h := t.handle
	h = t.other
	h()
}
`)
	g := BuildCallGraph(pass)
	if got := calleeNames(nodeByName(t, g, "bound")); len(got) != 1 || got[0] != "handle" {
		t.Fatalf("bound's callees = %v, want [handle]", got)
	}
	// rebound's h has two distinct bindings: the call through it must
	// not be attributed to either target.
	if got := nodeByName(t, g, "rebound").Calls; len(got) != 0 {
		t.Fatalf("rebound's resolved callees = %d, want 0 (poisoned binding)", len(got))
	}
}

// Interface dispatch mirrors the Transport/SyncProcess shape: the edge
// carries the interface method and fans out to every in-package
// implementation, value or pointer receiver alike.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	pass := typeCheckSrc(t, `package cgtest
type Transport interface {
	Send(to int)
}
type simT struct{}
func (simT) Send(to int) {}
type tcpT struct{}
func (*tcpT) Send(to int) {}
type unrelated struct{}
func (unrelated) Recv() {}
func drive(tr Transport) {
	tr.Send(1)
}
`)
	g := BuildCallGraph(pass)
	calls := nodeByName(t, g, "drive").Calls
	if len(calls) != 1 {
		t.Fatalf("drive has %d resolved calls, want 1", len(calls))
	}
	cs := calls[0]
	if !cs.Dynamic {
		t.Fatalf("interface call not marked dynamic")
	}
	if cs.Callee.Name() != "Send" {
		t.Fatalf("dynamic callee = %s, want the interface method Send", cs.Callee.Name())
	}
	var recvs []string
	for _, impl := range cs.Impls {
		sig := impl.Type().(*types.Signature)
		tn := sig.Recv().Type()
		if p, ok := tn.(*types.Pointer); ok {
			tn = p.Elem()
		}
		recvs = append(recvs, tn.(*types.Named).Obj().Name())
	}
	sort.Strings(recvs)
	if len(recvs) != 2 || recvs[0] != "simT" || recvs[1] != "tcpT" {
		t.Fatalf("dispatch targets = %v, want [simT tcpT]", recvs)
	}
}

// Summaries over mutually recursive functions must reach a fixpoint,
// not recurse forever; the summary here is the set of reachable
// in-package functions.
func TestSummariesRecursionFixpoint(t *testing.T) {
	pass := typeCheckSrc(t, `package cgtest
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}
func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}
`)
	g := BuildCallGraph(pass)
	reach := NewSummaries(g,
		func(node *FuncNode, get func(*types.Func) map[string]bool) map[string]bool {
			out := map[string]bool{}
			for _, cs := range node.Calls {
				if cs.Callee == nil || cs.Dynamic {
					continue
				}
				out[cs.Callee.Name()] = true
				for k := range get(cs.Callee) {
					out[k] = true
				}
			}
			return out
		},
		func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		})
	even := nodeByName(t, g, "even").Obj
	got := reach.Get(even)
	if !got["odd"] || !got["even"] {
		t.Fatalf("even's reachable set = %v, want both even and odd (mutual recursion)", got)
	}
	fib := nodeByName(t, g, "fib").Obj
	if got := reach.Get(fib); !got["fib"] || len(got) != 1 {
		t.Fatalf("fib's reachable set = %v, want exactly {fib}", got)
	}
	// Memoized second read must agree.
	if again := reach.Get(even); len(again) != len(got) {
		t.Fatalf("memoized summary differs: %v vs %v", again, got)
	}
}
