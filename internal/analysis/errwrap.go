package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ErrWrap enforces that the package sentinels (ErrTooFewProcesses,
// ErrDeliveryViolated, ...) stay reachable through errors.Is at every
// wrap site. The public contract of Run(ctx, spec) — and the oracle in
// internal/simtest that classifies out-of-model executions as "typed
// failure" — match errors with errors.Is, so three shapes are banned:
//
//  1. fmt.Errorf passing a sentinel under any verb but %w: the message
//     mentions the sentinel but the chain loses it.
//  2. err == ErrX / err != ErrX: breaks once the error is wrapped.
//  3. returning an ad-hoc error (errors.New or a %w-less fmt.Errorf
//     with no sentinel argument) from a scoped package: callers get an
//     error no declared sentinel matches.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "sentinels must be wrapped with %w, matched with errors.Is, and every error path " +
		"must chain back to a declared sentinel",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n)
				}
			case *ast.ReturnStmt:
				checkAdHocReturn(pass, n)
			}
			return true
		})
		_ = info
	}
	return nil
}

// checkErrorfWrap pairs fmt.Errorf format verbs with their arguments
// and reports sentinel arguments bound to a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	path, name := pkgFunc(pass.TypesInfo, call)
	if path != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := stringLit(call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !exprIsSentinel(pass, arg) {
			continue
		}
		if i >= len(verbs) {
			continue // vet territory: too few verbs
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s passed to fmt.Errorf under %%%c; use %%w so errors.Is still matches the wrapped chain",
				exprText(arg), verbs[i])
		}
	}
}

// checkSentinelCompare flags direct ==/!= against a sentinel.
func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if exprIsSentinel(pass, side) {
			pass.Reportf(bin.Pos(),
				"direct comparison against sentinel %s misses wrapped errors; use errors.Is(err, %s)",
				exprText(side), exprText(side))
			return
		}
	}
}

// checkAdHocReturn flags `return ..., errors.New(...)` and
// `return ..., fmt.Errorf(<no %w, no sentinel arg>)`: errors minted at
// the return site that no declared sentinel can ever match.
func checkAdHocReturn(pass *Pass, ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		call, ok := res.(*ast.CallExpr)
		if !ok {
			continue
		}
		path, name := pkgFunc(pass.TypesInfo, call)
		switch {
		case path == "errors" && name == "New":
			pass.Reportf(call.Pos(),
				"ad-hoc errors.New at return site is unreachable by errors.Is; wrap a declared package sentinel with fmt.Errorf(\"...: %%w\", ErrX)")
		case path == "fmt" && name == "Errorf":
			format, ok := stringLit(call.Args[0])
			if !ok || strings.Contains(format, "%w") {
				continue
			}
			sentinelArg := false
			for _, arg := range call.Args[1:] {
				if exprIsSentinel(pass, arg) {
					sentinelArg = true
					break
				}
			}
			if !sentinelArg {
				pass.Reportf(call.Pos(),
					"returned fmt.Errorf has no %%w and no sentinel: callers cannot match it with errors.Is; wrap a declared package sentinel")
			}
		}
	}
}

func exprIsSentinel(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e) != nil && isErrorSentinel(pass.TypesInfo.ObjectOf(e))
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(e.Sel) != nil && isErrorSentinel(pass.TypesInfo.ObjectOf(e.Sel))
	}
	return false
}

func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "?"
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// formatVerbs returns the verb letters of a Printf format string in
// argument order, skipping %% and flag/width/precision runs. Indexed
// arguments (%[1]d) are rare in this codebase and treated positionally.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[i])) {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}
