package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc type-checks one import-free source file and runs it through
// CheckPackage (analyzers may be nil: the directive pipeline runs
// regardless, which is exactly what these tests target).
func checkSrc(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	path := filepath.Join(t.TempDir(), "a.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := TypeCheck(fset, "p", []string{path}, exportImporter(fset, nil))
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := CheckPackage(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func TestDirectiveMissingJustification(t *testing.T) {
	diags := checkSrc(t, `package p

//bvclint:allow nodeterminism
var x = 1
`, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing a justification") {
		t.Fatalf("want one missing-justification diagnostic, got %v", diags)
	}
	if diags[0].Analyzer != "bvclint" {
		t.Fatalf("directive diagnostics must come from the bvclint pseudo-analyzer, got %q", diags[0].Analyzer)
	}
}

func TestDirectiveEmptyJustification(t *testing.T) {
	diags := checkSrc(t, `package p

//bvclint:allow nodeterminism --
var x = 1
`, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing a justification") {
		t.Fatalf("want one missing-justification diagnostic, got %v", diags)
	}
}

func TestDirectiveMalformed(t *testing.T) {
	diags := checkSrc(t, `package p

//bvclint:allow two names -- reason
var x = 1
`, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed directive") {
		t.Fatalf("want one malformed-directive diagnostic, got %v", diags)
	}
}

func TestDirectiveUnknownAnalyzer(t *testing.T) {
	diags := checkSrc(t, `package p

//bvclint:allow nosuch -- reason
var x = 1
`, nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, `unknown analyzer "nosuch"`) {
		t.Fatalf("want one unknown-analyzer diagnostic, got %v", diags)
	}
}

func TestNonDirectiveCommentIgnored(t *testing.T) {
	diags := checkSrc(t, `package p

//bvclint:allowance is a different word entirely
// bvclint:allow with a leading space is not a directive either
var x = 1
`, nil)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", diags)
	}
}

// Staleness contract: a directive is stale exactly when its analyzer
// RAN over the package and it suppressed nothing. The same source is
// checked three ways to pin each side of the condition.
func TestDirectiveStaleness(t *testing.T) {
	const quiet = `package p

func cmp(a, b int) bool {
	//bvclint:allow floateq -- ints: floateq has nothing to say here
	return a == b
}
`
	const active = `package p

func cmp(a, b float64) bool {
	//bvclint:allow floateq -- fixture: exact compare wanted
	return a == b
}
`
	// Analyzer ran, suppressed nothing: stale.
	diags := checkSrc(t, quiet, []*Analyzer{FloatEq})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale directive: floateq") {
		t.Fatalf("want one stale-directive diagnostic, got %v", diags)
	}
	if diags[0].Analyzer != "bvclint" {
		t.Fatalf("staleness must come from the bvclint pseudo-analyzer, got %q", diags[0].Analyzer)
	}
	// Analyzer did not run: the directive is someone else's business.
	if diags := checkSrc(t, quiet, nil); len(diags) != 0 {
		t.Fatalf("directive must not be stale when its analyzer is skipped, got %v", diags)
	}
	// Analyzer ran and the directive suppressed a finding: not stale,
	// and the finding stays suppressed.
	if diags := checkSrc(t, active, []*Analyzer{FloatEq}); len(diags) != 0 {
		t.Fatalf("used directive reported, got %v", diags)
	}
}

func TestParseExceptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exceptions.txt")
	content := `# comment

internal/metrics/metrics.go metriclabel -- registration surface
internal/memo/memo.go metriclabel -- composed literal names
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	excs, err := ParseExceptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(excs) != 2 {
		t.Fatalf("want 2 exceptions, got %d", len(excs))
	}
	if excs[0].PathSuffix != "internal/metrics/metrics.go" || excs[0].Analyzer != "metriclabel" || excs[0].Reason != "registration surface" {
		t.Fatalf("bad parse: %+v", excs[0])
	}
}

func TestParseExceptionsRejectsMissingReason(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exceptions.txt")
	if err := os.WriteFile(path, []byte("foo.go metriclabel\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExceptions(path); err == nil {
		t.Fatal("want error for exception line without justification")
	}
}

func TestApplyExceptions(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "metriclabel", Pos: token.Position{Filename: "/repo/internal/metrics/metrics.go", Line: 3}},
		{Analyzer: "metriclabel", Pos: token.Position{Filename: "/repo/internal/consensus/metrics.go", Line: 9}},
		{Analyzer: "floateq", Pos: token.Position{Filename: "/repo/internal/metrics/metrics.go", Line: 5}},
	}
	excs := []Exception{{PathSuffix: "internal/metrics/metrics.go", Analyzer: "metriclabel", Reason: "r"}}
	kept := applyExceptions(diags, excs)
	if len(kept) != 2 {
		t.Fatalf("want 2 kept, got %v", kept)
	}
	for _, d := range kept {
		if d.Analyzer == "metriclabel" && strings.HasSuffix(d.Pos.Filename, "internal/metrics/metrics.go") {
			t.Fatalf("exception not applied: %v", d)
		}
	}
}

// A whole-tree run reports exceptions-file entries that exempt
// nothing; a partial run (no StaleExceptionsPath) stays silent.
func TestStaleExceptionReported(t *testing.T) {
	fset := token.NewFileSet()
	path := filepath.Join(t.TempDir(), "a.go")
	if err := os.WriteFile(path, []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := TypeCheck(fset, "p", []string{path}, exportImporter(fset, nil))
	if err != nil {
		t.Fatal(err)
	}
	excs := []Exception{{PathSuffix: "gone/forever.go", Analyzer: "floateq", Reason: "r", Line: 7}}

	diags, err := RunAnalyzersOpts([]*Package{pkg}, All(), excs, RunOptions{StaleExceptionsPath: "lint/exceptions.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "stale exception: gone/forever.go") {
		t.Fatalf("want one stale-exception diagnostic, got %v", diags)
	}
	if diags[0].Pos.Filename != "lint/exceptions.txt" || diags[0].Pos.Line != 7 {
		t.Fatalf("stale exception reported at %s:%d, want lint/exceptions.txt:7", diags[0].Pos.Filename, diags[0].Pos.Line)
	}

	diags, err = RunAnalyzersOpts([]*Package{pkg}, All(), excs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("partial run must not report stale exceptions, got %v", diags)
	}
}

func TestInScope(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{NoDeterminism, "relaxedbvc/internal/consensus", true},
		{NoDeterminism, "relaxedbvc/internal/geom", false},
		{NoDeterminism, "relaxedbvc/internal/experiments", false},
		{FloatEq, "relaxedbvc/internal/geom", true},
		{FloatEq, "relaxedbvc/internal/consensus", false},
		{SeedFlow, "relaxedbvc/internal/workload", true},
		{MetricLabel, "relaxedbvc", true},
		{ErrWrap, "relaxedbvc", true},
		{ErrWrap, "relaxedbvc/internal/viz", false},
	}
	for _, c := range cases {
		if got := InScope(c.a, c.path); got != c.want {
			t.Errorf("InScope(%s, %s) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}
