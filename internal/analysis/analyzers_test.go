package analysis_test

import (
	"testing"

	"relaxedbvc/internal/analysis"
	"relaxedbvc/internal/analysis/analysistest"
)

// One fixture package per analyzer under testdata/src; each `// want`
// comment is a seeded violation the analyzer must report, and every
// unannotated line must stay silent.

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.NoDeterminism, "nodeterminism")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder")
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysis.ErrWrap, "errwrap")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, analysis.FloatEq, "floateq")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, analysis.SeedFlow, "seedflow")
}

func TestMetricLabel(t *testing.T) {
	analysistest.Run(t, analysis.MetricLabel, "metriclabel")
}

func TestTransportErr(t *testing.T) {
	analysistest.Run(t, analysis.TransportErr, "transporterr")
}

func TestQuorumGate(t *testing.T) {
	analysistest.Run(t, analysis.QuorumGate, "quorumgate")
}

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysis.LockSafe, "locksafe")
}

func TestCtxLeak(t *testing.T) {
	analysistest.Run(t, analysis.CtxLeak, "ctxleak")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix")
}

func TestChanLife(t *testing.T) {
	analysistest.Run(t, analysis.ChanLife, "chanlife")
}

// TestAllowDirective proves the suppression contract: an own-line
// //bvclint:allow <analyzer> covers exactly the next line, a trailing
// one its own line, a directive naming another analyzer suppresses
// nothing, an unknown analyzer name is itself a diagnostic, and a
// directive whose analyzer ran but suppressed nothing is reported
// stale.
func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, analysis.NoDeterminism, "allow")
}
