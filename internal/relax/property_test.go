package relax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

// Property: any point returned by GammaPoint is in the hull of EVERY
// (n-f)-subset, and Gamma is never empty for n >= (d+1)f+1 (Tverberg).
func TestPropertyGammaPointCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	f := func() bool {
		d := 1 + rng.Intn(3)
		fl := 1 + rng.Intn(2)
		n := (d+1)*fl + 1
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		pt, ok := GammaPoint(s, fl)
		if !ok {
			return false
		}
		for _, sub := range DroppedSubsets(s, fl) {
			if dd, _ := geom.Dist2(pt, sub); dd > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: DeltaStarPoly is monotone under adding points to every
// subset family (adding an input can only shrink or preserve delta*,
// Lemma 16 in reverse: delta*(S + point) <= delta*(S) ... note the
// direction: more inputs = larger subsets = bigger hulls = easier).
func TestPropertyDeltaStarShrinksWithMoreInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	f := func() bool {
		d := 2 + rng.Intn(2)
		n := d + 1
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		dBase, _ := DeltaStarPoly(s, 1, math.Inf(1))
		s2 := s.Clone()
		s2.Append(randVec(rng, d, 2))
		dMore, _ := DeltaStarPoly(s2, 1, math.Inf(1))
		return dMore <= dBase+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the point returned at delta* satisfies the distance bound to
// every subset hull in the chosen norm.
func TestPropertyDeltaStarWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	f := func() bool {
		d := 2 + rng.Intn(2)
		n := d + 1 + rng.Intn(2)
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		s := vec.NewSet(pts...)
		for _, p := range []float64{1, math.Inf(1)} {
			dstar, pt := DeltaStarPoly(s, 1, p)
			for _, sub := range DroppedSubsets(s, 1) {
				dd, _ := geom.DistP(pt, sub, p)
				if dd > dstar+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: H_k membership is invariant under permuting the point order
// of the multiset.
func TestPropertyHullKOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(234))
	f := func() bool {
		d := 3
		n := 5
		pts := make([]vec.V, n)
		for i := range pts {
			pts[i] = randVec(rng, d, 2)
		}
		q := randVec(rng, d, 2)
		s1 := vec.NewSet(pts...)
		perm := rng.Perm(n)
		permuted := make([]vec.V, n)
		for i, j := range perm {
			permuted[i] = pts[j]
		}
		s2 := vec.NewSet(permuted...)
		for k := 1; k <= d; k++ {
			if InHullK(q, s1, k) != InHullK(q, s2, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
