// Package relax implements the relaxed convex hulls of the paper and the
// intersection machinery its algorithms and impossibility arguments need:
//
//   - H_k(S), the k-relaxed convex hull of Definition 6, via projection
//     membership tests;
//   - Gamma(Y) = intersection over |T| = |Y|-f of H(T) (Section 3), as a
//     single exact LP with one weight simplex per subset;
//   - Psi_k(Y) = intersection over T of H_k(T) (proof of Theorem 3);
//   - Gamma_(delta,p)(S) = intersection over T of H_(delta,p)(T)
//     (Algorithm ALGO, Section 9), exactly for p in {1, inf} via LP, with
//     delta minimization giving delta*_1 and delta*_inf in closed LP form.
//
// The generic building blocks operate on arbitrary finite families of
// point sets, so the same code serves both the Gamma/Psi subset families
// and the per-process families of the asynchronous lower-bound proofs.
package relax

import (
	"fmt"
	"math"
	"sync"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/vec"
)

// projScratchPool recycles projection buffers across InHullK sweeps so
// the per-subset projections of the steady-state inner loop allocate
// nothing.
var projScratchPool = sync.Pool{New: func() any { return new(vec.ProjScratch) }}

// minParallelCombos is the minimum number of coordinate subsets before
// InHullK fans its projection tests out over the kernel workers; below
// it the goroutine hand-off costs more than the memoized LP tests.
const minParallelCombos = 8

// InHullK reports whether q lies in H_k(S): for every size-k index subset
// D of the coordinates, the D-projection of q lies in the convex hull of
// the D-projections of S (Definition 6). Large C(d,k) families evaluate
// the projection tests on the kernel workers; the conjunction is
// order-independent, so the result is bit-identical to the sequential
// sweep for any worker count.
func InHullK(q vec.V, s *vec.Set, k int) bool {
	d := q.Dim()
	if k < 1 || k > d {
		panic(fmt.Sprintf("relax: InHullK requires 1 <= k <= d, got k=%d d=%d", k, d))
	}
	// Accept-only prefilter: conv(S) is contained in H_k(S) — the
	// D-projection of a convex combination is a convex combination of the
	// D-projections — so one full-space membership accept certifies all
	// C(d,k) projection tests at once. Sound in both directions it is
	// used: an accept is exact, a miss just falls through to the sweep.
	// Gated with the certified screens so the filters-off path stays the
	// pure per-projection sweep.
	if k < d && geom.FilteredPredicatesEnabled() && geom.InHull(q, s) {
		kprojConvAccepts.Inc()
		return true
	}
	if workers := par.KernelWorkers(); workers > 1 && vec.CountCombinations(d, k) >= minParallelCombos {
		Ds := vec.AllCombinationsGray(d, k)
		return par.AllOf(len(Ds), workers, func(i int) bool {
			ps := projScratchPool.Get().(*vec.ProjScratch)
			defer projScratchPool.Put(ps)
			return geom.InHull(ps.ProjectInto(q, Ds[i]), ps.ProjectSetInto(s, Ds[i]))
		})
	}
	ps := projScratchPool.Get().(*vec.ProjScratch)
	defer projScratchPool.Put(ps)
	in := true
	// Revolving-door order: consecutive subsets D differ in one
	// coordinate, keeping the reused projection buffers and the memo
	// cache's working set maximally warm. The conjunction is
	// order-independent, so the answer matches the lexicographic sweep.
	vec.CombinationsGray(d, k, func(D []int) bool {
		if !geom.InHull(ps.ProjectInto(q, D), ps.ProjectSetInto(s, D)) {
			in = false
			return false
		}
		return true
	})
	return in
}

// DroppedSubsets returns the family of sub-multisets T of Y with
// |T| = |Y| - f, in deterministic (lexicographic) order.
func DroppedSubsets(y *vec.Set, f int) []*vec.Set {
	if f < 0 || f >= y.Len() {
		panic("relax: DroppedSubsets requires 0 <= f < |Y|")
	}
	var fam []*vec.Set
	vec.IndexSubsetsDroppingF(y.Len(), f, func(keep []int) bool {
		fam = append(fam, y.Subset(keep))
		return true
	})
	return fam
}

// IntersectHulls finds a point in the intersection of the convex hulls of
// the given sets, or ok=false if the intersection is empty. The decision
// is an exact LP feasibility with a shared free point x and one convex
// weight simplex per set, short-cut by the Intersector prefilters when
// they can settle the family without an LP.
func IntersectHulls(sets []*vec.Set) (point vec.V, ok bool) {
	return Intersector{Kind: HullExact}.Intersect(sets, nil)
}

// GammaPoint finds a point in Gamma(Y) = intersection over T of H(T)
// with |T| = |Y| - f, or ok=false when Gamma(Y) is empty (memoized). By
// Tverberg's theorem Gamma(Y) is non-empty whenever |Y| >= (d+1)f + 1.
func GammaPoint(y *vec.Set, f int) (vec.V, bool) {
	if !cache.Enabled() {
		return IntersectHulls(DroppedSubsets(y, f))
	}
	k := setKey(opGamma, y, f, 0)
	defer k.Release()
	var e gammaEntry
	if v, hit := cache.Get(k); hit {
		e = v.(gammaEntry)
	} else {
		pt, ok := IntersectHulls(DroppedSubsets(y, f))
		e = cache.Put(k, gammaEntry{pt: pt, ok: ok}).(gammaEntry)
	}
	if !e.ok {
		return nil, false
	}
	return e.pt.Clone(), true
}

// projBlock identifies one (set, D) pair of a k-relaxed intersection.
type projBlock struct {
	set *vec.Set
	D   []int
}

// IntersectKHulls finds a point in the intersection of the k-relaxed
// hulls H_k of the given sets, or ok=false if empty. Each (set, D) pair
// contributes a weight simplex over the D-projections; all constraints
// share the free point x. The Intersector prefilters run first.
func IntersectKHulls(sets []*vec.Set, k int) (vec.V, bool) {
	return Intersector{Kind: HullKProj, K: k}.Intersect(sets, nil)
}

// PsiKPoint finds a point in Psi_k(Y) = intersection over T (|T|=|Y|-f)
// of H_k(T), the feasible-output region of k-relaxed exact consensus in
// the proof of Theorem 3, or ok=false when the region is empty.
func PsiKPoint(y *vec.Set, f, k int) (vec.V, bool) {
	return IntersectKHulls(DroppedSubsets(y, f), k)
}

// IntersectRelaxedHulls finds a point in the intersection of the
// (delta,p)-relaxed hulls of the sets, for p in {1, +Inf} where the
// membership constraint is linear. ok=false when the intersection is
// empty. For p = 2 use minimax.DeltaStar2 and compare against delta.
// The Intersector prefilters run first.
func IntersectRelaxedHulls(sets []*vec.Set, delta, p float64) (vec.V, bool) {
	return Intersector{Kind: HullDeltaP, Delta: delta, P: p}.Intersect(sets, nil)
}

// MinIntersectionDelta returns delta*_p(S-family) = the smallest delta
// for which the intersection of the (delta,p)-relaxed hulls of the sets
// is non-empty, together with an attaining point, for p in {1, +Inf}.
// This is the exact LP analogue of the minimax definition of delta* in
// Section 9.2.2 for polyhedral norms.
func MinIntersectionDelta(sets []*vec.Set, p float64) (delta float64, point vec.V) {
	x, val, feasible := relaxedLP(sets, p, nil)
	if !feasible {
		panic("relax: MinIntersectionDelta infeasible (cannot happen: delta is free)")
	}
	return val, x
}

// relaxedLP builds and solves the shared LP behind IntersectRelaxedHulls
// and MinIntersectionDelta. If fixedDelta is nil, delta is a variable and
// the LP minimizes it; otherwise delta is fixed and the LP is a pure
// feasibility problem.
func relaxedLP(sets []*vec.Set, p float64, fixedDelta *float64) (vec.V, float64, bool) {
	prob, d, ok := relaxedLPProblem(sets, p, fixedDelta)
	if !ok {
		return nil, 0, false
	}
	res, err := prob.Solve()
	if err != nil {
		panic(err)
	}
	if res.Status != lp.Optimal {
		return nil, 0, false
	}
	x := vec.V(res.X[:d]).Clone()
	val := 0.0
	if fixedDelta == nil {
		val = math.Max(res.X[d], 0)
	}
	return x, val, true
}

// relaxedLPProblem constructs the LP without solving it. The returned
// problem places x in variables [0,d) and (when fixedDelta is nil) delta
// at variable d with a minimize-delta objective preset. ok=false when a
// set is empty (trivially infeasible).
func relaxedLPProblem(sets []*vec.Set, p float64, fixedDelta *float64) (*lp.Problem, int, bool) {
	return relaxedLPProblemInto(nil, sets, p, fixedDelta)
}

// relaxedLPProblemInto is relaxedLPProblem writing into a reusable
// Problem (nil allocates a fresh one).
func relaxedLPProblemInto(reuse *lp.Problem, sets []*vec.Set, p float64, fixedDelta *float64) (*lp.Problem, int, bool) {
	if len(sets) == 0 {
		panic("relax: empty family")
	}
	isInf := math.IsInf(p, 1)
	if !isInf && p != 1 {
		panic(fmt.Sprintf("relax: relaxed-hull LP supports p in {1, inf}, got %v", p))
	}
	d := sets[0].Dim()
	// Variables: x (d, free); delta (1) if not fixed; per set: lambda
	// (m_i); for p=1 additionally per set: t (d deviations >= 0).
	nv := d
	deltaVar := -1
	if fixedDelta == nil {
		deltaVar = nv
		nv++
	}
	rs := getRowScratch()
	defer rs.release()
	lamOff := rs.offsets(0, len(sets))
	devOff := rs.offsets(1, len(sets))
	for i, s := range sets {
		if s.Len() == 0 {
			return nil, d, false
		}
		if s.Dim() != d {
			panic("relax: dimension mismatch")
		}
		lamOff[i] = nv
		nv += s.Len()
		if !isInf {
			devOff[i] = nv
			nv += d
		}
	}
	prob := newOrReset(reuse, nv)
	for j := 0; j < d; j++ {
		prob.SetFree(j)
	}
	if deltaVar >= 0 {
		obj := rs.zeroRow(nv)
		obj[deltaVar] = 1
		prob.SetObjective(obj, lp.Minimize)
	}
	dval := 0.0
	if fixedDelta != nil {
		dval = *fixedDelta
	}
	for i, s := range sets {
		m := s.Len()
		rs.idx, rs.val = rs.idx[:0], rs.val[:0]
		for t := 0; t < m; t++ {
			rs.idx = append(rs.idx, lamOff[i]+t)
			rs.val = append(rs.val, 1)
		}
		prob.AddSparseConstraint(rs.idx, rs.val, lp.EQ, 1)
		for j := 0; j < d; j++ {
			// r_j = x[j] - sum lambda_t s_t[j]; require |r_j| <= bound where
			// bound is delta (p=inf) or t_j (p=1).
			rs.idx, rs.val = rs.idx[:0], rs.val[:0]
			rs.idx = append(rs.idx, j)
			rs.val = append(rs.val, 1)
			for t := 0; t < m; t++ {
				rs.idx = append(rs.idx, lamOff[i]+t)
				rs.val = append(rs.val, -s.At(t)[j])
			}
			addBound := func(sign float64) {
				rs.ci, rs.cv = rs.ci[:0], rs.cv[:0]
				rs.ci = append(rs.ci, rs.idx...)
				for _, v := range rs.val {
					rs.cv = append(rs.cv, sign*v)
				}
				if isInf {
					if deltaVar >= 0 {
						rs.ci = append(rs.ci, deltaVar)
						rs.cv = append(rs.cv, -1)
						prob.AddSparseConstraint(rs.ci, rs.cv, lp.LE, 0)
					} else {
						prob.AddSparseConstraint(rs.ci, rs.cv, lp.LE, dval)
					}
				} else {
					rs.ci = append(rs.ci, devOff[i]+j)
					rs.cv = append(rs.cv, -1)
					prob.AddSparseConstraint(rs.ci, rs.cv, lp.LE, 0)
				}
			}
			addBound(1)
			addBound(-1)
		}
		if !isInf {
			// sum_j t_j <= delta for this set.
			rs.ci, rs.cv = rs.ci[:0], rs.cv[:0]
			for j := 0; j < d; j++ {
				rs.ci = append(rs.ci, devOff[i]+j)
				rs.cv = append(rs.cv, 1)
			}
			if deltaVar >= 0 {
				rs.ci = append(rs.ci, deltaVar)
				rs.cv = append(rs.cv, -1)
				prob.AddSparseConstraint(rs.ci, rs.cv, lp.LE, 0)
			} else {
				prob.AddSparseConstraint(rs.ci, rs.cv, lp.LE, dval)
			}
		}
	}
	return prob, d, true
}

// GammaDeltaPoint finds a point in Gamma_(delta,p)(S) =
// intersection over T (|T| = |S|-f) of H_(delta,p)(T), for p in {1,inf}.
func GammaDeltaPoint(s *vec.Set, f int, delta, p float64) (vec.V, bool) {
	return IntersectRelaxedHulls(DroppedSubsets(s, f), delta, p)
}

// DeltaStarPoly returns delta*_p(S) for the polyhedral norms p in
// {1, inf}: the smallest delta making Gamma_(delta,p)(S) non-empty,
// together with the deterministic point chosen at that delta (memoized).
func DeltaStarPoly(s *vec.Set, f int, p float64) (float64, vec.V) {
	if !cache.Enabled() {
		return MinIntersectionDelta(DroppedSubsets(s, f), p)
	}
	k := setKey(opDeltaPoly, s, f, p)
	defer k.Release()
	var e deltaEntry
	if v, hit := cache.Get(k); hit {
		e = v.(deltaEntry)
	} else {
		delta, pt := MinIntersectionDelta(DroppedSubsets(s, f), p)
		e = cache.Put(k, deltaEntry{delta: delta, pt: pt}).(deltaEntry)
	}
	return e.delta, e.pt.Clone()
}
