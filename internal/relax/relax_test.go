package relax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

func randVec(rng *rand.Rand, d int, scale float64) vec.V {
	v := vec.New(d)
	for i := range v {
		v[i] = rng.NormFloat64() * scale
	}
	return v
}

func randSet(rng *rand.Rand, n, d int, scale float64) *vec.Set {
	pts := make([]vec.V, n)
	for i := range pts {
		pts[i] = randVec(rng, d, scale)
	}
	return vec.NewSet(pts...)
}

func TestInHullKBoxVsHull(t *testing.T) {
	// S = {(0,0),(1,1)}: H_2(S) is the segment, H_1(S) is the unit square.
	s := vec.NewSet(vec.Of(0, 0), vec.Of(1, 1))
	q := vec.Of(1, 0)
	if InHullK(q, s, 2) {
		t.Error("(1,0) in H_2 (segment)?")
	}
	if !InHullK(q, s, 1) {
		t.Error("(1,0) not in H_1 (box)?")
	}
	if !InHullK(vec.Of(0.5, 0.5), s, 2) {
		t.Error("midpoint not in H_2")
	}
	if InHullK(vec.Of(1.5, 0.5), s, 1) {
		t.Error("point outside box in H_1")
	}
}

func TestInHullKEqualsHullWhenKd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		s := randSet(rng, d+2, d, 2)
		q := randVec(rng, d, 2)
		if InHullK(q, s, d) != geom.InHull(q, s) {
			t.Fatalf("H_d != H for q=%v", q)
		}
	}
}

// Lemma 1: H_i(S) subset of H_j(S) for i >= j.
func TestLemma1Containment(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		d := 3 + rng.Intn(2)
		s := randSet(rng, d+2, d, 2)
		q := randVec(rng, d, 2)
		prev := false
		for k := d; k >= 1; k-- {
			in := InHullK(q, s, k)
			if prev && !in {
				t.Fatalf("Lemma 1 violated: in H_%d but not H_%d", k+1, k)
			}
			prev = in
		}
	}
}

func TestInHullKValidation(t *testing.T) {
	s := vec.NewSet(vec.Of(0, 0))
	for _, k := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d did not panic", k)
				}
			}()
			InHullK(vec.Of(0, 0), s, k)
		}()
	}
}

func TestDroppedSubsets(t *testing.T) {
	y := vec.NewSet(vec.Of(0), vec.Of(1), vec.Of(2))
	fam := DroppedSubsets(y, 1)
	if len(fam) != 3 {
		t.Fatalf("family size = %d", len(fam))
	}
	// Lexicographic keep-sets: {0,1},{0,2},{1,2}.
	if !fam[0].At(1).Equal(vec.Of(1)) || !fam[2].At(0).Equal(vec.Of(1)) {
		t.Error("subset ordering unexpected")
	}
	defer func() {
		if recover() == nil {
			t.Error("f >= |Y| did not panic")
		}
	}()
	DroppedSubsets(y, 3)
}

func TestIntersectHullsOverlap(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 2))
	b := vec.NewSet(vec.Of(1, 1), vec.Of(3, 1), vec.Of(1, 3))
	pt, ok := IntersectHulls([]*vec.Set{a, b})
	if !ok {
		t.Fatal("overlapping hulls reported disjoint")
	}
	if !geom.InHull(pt, a) || !geom.InHull(pt, b) {
		t.Errorf("witness %v not in both hulls", pt)
	}
}

func TestIntersectHullsDisjoint(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1))
	b := vec.NewSet(vec.Of(5, 5), vec.Of(6, 5), vec.Of(5, 6))
	if _, ok := IntersectHulls([]*vec.Set{a, b}); ok {
		t.Error("disjoint hulls reported intersecting")
	}
}

func TestIntersectHullsTouching(t *testing.T) {
	// Hulls sharing exactly one point.
	a := vec.NewSet(vec.Of(0, 0), vec.Of(1, 1))
	b := vec.NewSet(vec.Of(1, 1), vec.Of(2, 0))
	pt, ok := IntersectHulls([]*vec.Set{a, b})
	if !ok {
		t.Fatal("touching hulls reported disjoint")
	}
	if !pt.ApproxEqual(vec.Of(1, 1), 1e-6) {
		t.Errorf("witness = %v, want (1,1)", pt)
	}
}

// Gamma of a nondegenerate simplex with f = 1 is the intersection of its
// facets: empty. This is the f = 1 tightness side of Tverberg (Section 8).
func TestGammaEmptyForSimplex(t *testing.T) {
	s := vec.NewSet(vec.Of(0, 0), vec.Of(1, 0), vec.Of(0, 1))
	if _, ok := GammaPoint(s, 1); ok {
		t.Error("Gamma of triangle with f=1 should be empty")
	}
	// 3D.
	s3 := vec.NewSet(vec.Of(0, 0, 0), vec.Of(1, 0, 0), vec.Of(0, 1, 0), vec.Of(0, 0, 1))
	if _, ok := GammaPoint(s3, 1); ok {
		t.Error("Gamma of tetrahedron with f=1 should be empty")
	}
}

// Gamma is non-empty when n >= (d+1)f + 1 (Tverberg, Theorem 7).
func TestGammaNonEmptyAboveTverbergBound(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		d := 2 + rng.Intn(2)
		f := 1 + rng.Intn(2)
		n := (d+1)*f + 1
		s := randSet(rng, n, d, 3)
		pt, ok := GammaPoint(s, f)
		if !ok {
			t.Fatalf("Gamma empty for n=%d d=%d f=%d", n, d, f)
		}
		// Witness must be in every (n-f)-subset hull.
		for _, sub := range DroppedSubsets(s, f) {
			if d2, _ := geom.Dist2(pt, sub); d2 > 1e-6 {
				t.Fatalf("witness misses a subset hull by %v", d2)
			}
		}
	}
}

func TestPsiKSupersetOfGamma(t *testing.T) {
	// Whenever Gamma(Y) is non-empty, Psi_k(Y) is too (H subset of H_k).
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 10; trial++ {
		d := 3
		f := 1
		n := (d+1)*f + 1
		s := randSet(rng, n, d, 2)
		if _, ok := GammaPoint(s, f); !ok {
			continue
		}
		for k := 1; k <= d; k++ {
			if _, ok := PsiKPoint(s, f, k); !ok {
				t.Fatalf("Psi_%d empty though Gamma non-empty", k)
			}
		}
	}
}

// The Theorem 3 adversarial matrix: with n = d+1, f = 1, k = 2, the
// feasible region Psi is empty. This is the core of the paper's k-relaxed
// necessity proof.
func theorem3Matrix(d int, gamma, eps float64) *vec.Set {
	cols := make([]vec.V, d+1)
	for i := 0; i < d; i++ {
		c := vec.New(d)
		for r := 0; r < d; r++ {
			switch {
			case r < i:
				c[r] = 0
			case r == i:
				c[r] = gamma
			default:
				c[r] = eps
			}
		}
		cols[i] = c
	}
	last := vec.New(d)
	for r := range last {
		last[r] = -gamma
	}
	cols[d] = last
	return vec.NewSet(cols...)
}

func TestTheorem3MatrixEmptiesPsi2(t *testing.T) {
	for d := 3; d <= 5; d++ {
		s := theorem3Matrix(d, 1.0, 0.5)
		if _, ok := PsiKPoint(s, 1, 2); ok {
			t.Errorf("d=%d: Psi_2 non-empty on the Theorem 3 matrix", d)
		}
		// Sanity: with one more (duplicate, say) process the bound
		// n >= (d+1)f+1 is met and Psi_2 becomes non-empty.
		s2 := s.Clone()
		s2.Append(vec.New(d)) // origin
		if _, ok := PsiKPoint(s2, 1, 2); !ok {
			t.Errorf("d=%d: Psi_2 empty with n=d+2", d)
		}
	}
}

func TestPsiK1AlwaysFeasibleAtN3f1(t *testing.T) {
	// k = 1 needs only n >= 3f+1 regardless of d: per-coordinate interval
	// intersections are non-empty for n >= 3f+1 points on each axis.
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 10; trial++ {
		d := 4 + rng.Intn(3)
		f := 1
		n := 3*f + 1
		s := randSet(rng, n, d, 2)
		if _, ok := PsiKPoint(s, f, 1); !ok {
			t.Fatalf("Psi_1 empty for n=%d f=%d d=%d", n, f, d)
		}
	}
}

func TestIntersectRelaxedHullsInf(t *testing.T) {
	// Two well-separated points: Linf distance 2 apart; delta = 1 is the
	// threshold for intersecting relaxed hulls.
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(2, 0))
	if _, ok := IntersectRelaxedHulls([]*vec.Set{a, b}, 0.99, math.Inf(1)); ok {
		t.Error("intersect at delta=0.99 < 1")
	}
	pt, ok := IntersectRelaxedHulls([]*vec.Set{a, b}, 1.01, math.Inf(1))
	if !ok {
		t.Fatal("no intersection at delta=1.01")
	}
	if math.Abs(pt[0]-1) > 0.02 {
		t.Errorf("witness = %v, want x ~ 1", pt)
	}
}

func TestIntersectRelaxedHullsL1(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(2, 2)) // L1 distance 4, threshold delta = 2
	if _, ok := IntersectRelaxedHulls([]*vec.Set{a, b}, 1.9, 1); ok {
		t.Error("intersect at delta=1.9 < 2")
	}
	if _, ok := IntersectRelaxedHulls([]*vec.Set{a, b}, 2.1, 1); !ok {
		t.Error("no intersection at delta=2.1")
	}
}

func TestMinIntersectionDelta(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(2, 0))
	dInf, ptInf := MinIntersectionDelta([]*vec.Set{a, b}, math.Inf(1))
	if math.Abs(dInf-1) > 1e-7 {
		t.Errorf("delta*_inf = %v, want 1", dInf)
	}
	if math.Abs(ptInf[0]-1) > 1e-6 {
		t.Errorf("witness = %v", ptInf)
	}
	d1, _ := MinIntersectionDelta([]*vec.Set{a, b}, 1)
	if math.Abs(d1-1) > 1e-7 {
		t.Errorf("delta*_1 = %v, want 1", d1)
	}
}

func TestDeltaStarPolyThresholdBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(2)
		n := d + 1
		s := randSet(rng, n, d, 2)
		for _, p := range []float64{1, math.Inf(1)} {
			dstar, pt := DeltaStarPoly(s, 1, p)
			if dstar < 0 {
				t.Fatalf("negative delta* %v", dstar)
			}
			// Feasible at delta* (+tiny slack), infeasible below.
			if _, ok := GammaDeltaPoint(s, 1, dstar+1e-6, p); !ok {
				t.Fatalf("infeasible at delta*+eps (p=%v)", p)
			}
			if dstar > 1e-6 {
				if _, ok := GammaDeltaPoint(s, 1, dstar*0.98-1e-9, p); ok {
					t.Fatalf("feasible below delta* (p=%v)", p)
				}
			}
			_ = pt
		}
	}
}

func TestDeltaStarPolyOrdering(t *testing.T) {
	// delta*_inf <= delta*_1 always (dist_inf <= dist_1 pointwise).
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(2)
		s := randSet(rng, d+1, d, 2)
		dInf, _ := DeltaStarPoly(s, 1, math.Inf(1))
		d1, _ := DeltaStarPoly(s, 1, 1)
		if dInf > d1+1e-7 {
			t.Fatalf("delta*_inf %v > delta*_1 %v", dInf, d1)
		}
	}
}

// Lemma 16 (monotonicity): removing an input cannot decrease delta*.
func TestLemma16MonotonicityPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 8; trial++ {
		d := 3
		n := 6
		f := 2
		s := randSet(rng, n, d, 2)
		dFull, _ := DeltaStarPoly(s, f, math.Inf(1))
		for i := 0; i < n; i++ {
			dLess, _ := DeltaStarPoly(s.Without(i), f, math.Inf(1))
			if dFull > dLess+1e-7 {
				t.Fatalf("Lemma 16 violated: delta*(S)=%v > delta*(S-%d)=%v", dFull, i, dLess)
			}
		}
	}
}

func TestRelaxedLPPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty family": func() { IntersectHulls(nil) },
		"bad p":        func() { IntersectRelaxedHulls([]*vec.Set{vec.NewSet(vec.Of(0))}, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGammaDeltaZeroEqualsGamma(t *testing.T) {
	// delta = 0 degenerates to the plain Gamma intersection (Section 5.3).
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 10; trial++ {
		d := 2
		n := 4 + rng.Intn(2)
		s := randSet(rng, n, d, 2)
		_, gOK := GammaPoint(s, 1)
		_, rOK := GammaDeltaPoint(s, 1, 0, math.Inf(1))
		if gOK != rOK {
			t.Fatalf("Gamma nonempty=%v but Gamma_(0,inf) nonempty=%v", gOK, rOK)
		}
	}
}
