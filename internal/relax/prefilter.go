package relax

import (
	"fmt"
	"math"
	"sync"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/vec"
)

// Prefilter observability: how often the cheap geometric tests decide a
// candidate family before a joint LP is built, and how many candidates
// still pay for the LP. The prefilter counters plus the LP counter sum
// to the number of Intersect calls.
var (
	bboxRejects    = metrics.DefaultCounter("relax_prefilter_bbox_rejects_total")
	witnessAccepts = metrics.DefaultCounter("relax_prefilter_witness_accepts_total")
	witnessRejects = metrics.DefaultCounter("relax_prefilter_witness_rejects_total")
	sepRejects     = metrics.DefaultCounter("relax_prefilter_separation_rejects_total")
	intersectLPs   = metrics.DefaultCounter("relax_intersect_lp_solves_total")

	// kprojConvAccepts counts InHullK sweeps short-circuited by the
	// conv(S) ⊆ H_k(S) full-space accept (see InHullK).
	kprojConvAccepts = metrics.DefaultCounter("relax_kproj_conv_accepts_total")
)

// bboxMargin guards the bounding-box rejection against the LP solver's
// feasibility tolerance: boxes count as overlapping unless separated by
// more than this margin, so the prefilter only rejects instances the LP
// would also reject. It is the shared screen-vs-LP slack constant of
// the geometry layer; see geom.PrefilterMargin for the full rationale.
const bboxMargin = geom.PrefilterMargin

// HullKind selects the hull family an Intersector decides over.
type HullKind int

const (
	// HullExact is the family of exact convex hulls H(T).
	HullExact HullKind = iota
	// HullKProj is the family of k-relaxed hulls H_k(T) (Definition 6).
	HullKProj
	// HullDeltaP is the family of (delta,p)-relaxed hulls H_(delta,p)(T)
	// (Definition 9), for the polyhedral norms p in {1, +Inf}.
	HullDeltaP
)

// Intersector decides non-emptiness of the intersection of one hull
// family over a family of point sets, running sound geometric
// prefilters before building the joint feasibility LP:
//
//   - Bounding-box rejection: conv(T) and H_k(T) lie inside bbox(T)
//     per coordinate (for H_k, every size-k projection set D containing
//     coordinate j pins x_j between the set's min and max), while
//     H_(delta,p)(T) lies inside bbox(T) inflated by delta, because
//     |r_j| <= ||r||_p <= delta for p in {1, +Inf}. If the (inflated)
//     boxes have empty intersection — with bboxMargin slack so the LP
//     tolerance cannot disagree — the hull intersection is empty and no
//     LP is needed.
//
//   - Singleton-witness membership: a singleton block {w} forces x = w
//     for the exact and k-relaxed kinds (H({w}) = H_k({w}) = {w}), so
//     the decision reduces to memoized membership tests of w against
//     every other hull — both acceptance and rejection are sound. For
//     the (delta,p) kind a singleton only confines x to a delta-ball
//     around w, so the witness path is accept-only: if w is within
//     delta of every conv(T) then w itself is an intersection point;
//     otherwise fall through to the LP. This is the candidate-point
//     reuse of the kernel sweep: the point that witnessed one subset is
//     membership-tested against the next subset before a fresh LP is
//     built, bailing out at the first subset that rejects it.
//
// Both prefilters are pure functions of the candidate family, so the
// accept/reject decision — and the returned point — are identical no
// matter how many workers scan candidate families in parallel.
type Intersector struct {
	Kind  HullKind
	K     int     // HullKProj: projection size k
	Delta float64 // HullDeltaP: relaxation radius
	P     float64 // HullDeltaP: norm, 1 or +Inf
}

// IntersectScratch carries the per-worker reusable state of repeated
// Intersect calls: one lp.Problem whose constraint-row storage is
// recycled across structurally similar joint LPs, the lp.WarmState
// holding the standard-form basis of the previous candidate's solve
// (adjacent sweep candidates share almost all structure, so SolveWarm
// refactors it instead of re-pivoting from scratch), and the
// geom.FilterScratch backing the certified separation screen. A scratch
// must not be shared between concurrent goroutines.
type IntersectScratch struct {
	prob *lp.Problem
	warm lp.WarmState
	fsc  geom.FilterScratch
}

// ResetWarm forgets the warm-start basis, e.g. at the start of an
// unrelated sweep. Purely a performance knob: a stale basis is repaired
// or discarded by SolveWarm, never trusted.
func (sc *IntersectScratch) ResetWarm() { sc.warm.Reset() }

var intersectScratchPool = sync.Pool{New: func() any { return new(IntersectScratch) }}

// GetIntersectScratch fetches a scratch from the pool.
func GetIntersectScratch() *IntersectScratch {
	return intersectScratchPool.Get().(*IntersectScratch)
}

// Release returns the scratch to the pool.
func (sc *IntersectScratch) Release() { intersectScratchPool.Put(sc) }

// Intersect finds a point in the intersection of the hull family over
// sets, or ok=false when the intersection is empty. sc may be nil (a
// pooled scratch is used for the call). The result is a pure function
// of (it, sets): prefilter short-cuts never change the decision, only
// which code path produced it.
func (it Intersector) Intersect(sets []*vec.Set, sc *IntersectScratch) (point vec.V, ok bool) {
	if len(sets) == 0 {
		panic("relax: Intersect on empty family")
	}
	d := sets[0].Dim()
	for _, s := range sets {
		if s.Len() == 0 {
			return nil, false
		}
		if s.Dim() != d {
			panic("relax: dimension mismatch")
		}
	}
	switch it.Kind {
	case HullKProj:
		if it.K < 1 || it.K > d {
			panic("relax: k out of range")
		}
	case HullDeltaP:
		if it.P != 1 && !math.IsInf(it.P, 1) {
			panic(fmt.Sprintf("relax: relaxed-hull LP supports p in {1, inf}, got %v", it.P))
		}
	}
	if it.rejectByBBox(sets, d) {
		bboxRejects.Inc()
		return nil, false
	}
	if pt, decided, nonEmpty := it.witness(sets); decided {
		if nonEmpty {
			witnessAccepts.Inc()
			return pt, true
		}
		witnessRejects.Inc()
		return nil, false
	}
	if sc == nil {
		sc = GetIntersectScratch()
		defer sc.Release()
	}
	if it.rejectBySeparation(sets, &sc.fsc) {
		sepRejects.Inc()
		return nil, false
	}
	intersectLPs.Inc()
	return it.solveLP(sets, d, sc)
}

// sepMaxFamily caps the family size the pairwise separation screen
// runs on. It is built for the small disjoint-block families of the
// partition scan (a handful of sets, usually separable when the joint
// LP is infeasible); the C(n,f) dropped-subset families share n-2f or
// more points between any two members, so their hulls always intersect
// pairwise and the O(|family|^2) screen could only ever burn time.
const sepMaxFamily = 8

// rejectBySeparation looks for one pair of sets whose hulls a certified
// float screen separates with margin over the LP tolerance (see
// geom.HullsSeparated); any separated pair makes the joint intersection
// empty. It does not apply to H_k hulls: H_k(T) is an intersection of
// coordinate-projection cylinders and strictly contains conv(T), so
// full-space hull separation proves nothing about it.
func (it Intersector) rejectBySeparation(sets []*vec.Set, fsc *geom.FilterScratch) bool {
	if it.Kind == HullKProj || len(sets) > sepMaxFamily {
		return false
	}
	delta := 0.0
	if it.Kind == HullDeltaP {
		delta = it.Delta
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			if geom.HullsSeparated(sets[i], sets[j], delta, it.P, fsc) {
				return true
			}
		}
	}
	return false
}

// rejectByBBox reports whether the per-set bounding boxes (inflated by
// delta for the relaxed kind) have empty intersection, which soundly
// certifies an empty hull intersection.
func (it Intersector) rejectByBBox(sets []*vec.Set, d int) bool {
	infl := 0.0
	if it.Kind == HullDeltaP {
		infl = it.Delta
	}
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(-1), math.Inf(1)
		for _, s := range sets {
			mn := s.At(0)[j]
			mx := mn
			for t := 1; t < s.Len(); t++ {
				if v := s.At(t)[j]; v < mn {
					mn = v
				} else if v > mx {
					mx = v
				}
			}
			if mn-infl > lo {
				lo = mn - infl
			}
			if mx+infl < hi {
				hi = mx + infl
			}
			if lo > hi+bboxMargin {
				return true
			}
		}
	}
	return false
}

// witness runs the singleton-witness prefilter. decided reports whether
// the intersection question was settled without an LP; when decided,
// nonEmpty carries the answer and pt the intersection point (nil on
// empty). Undecided means fall through to the joint LP.
func (it Intersector) witness(sets []*vec.Set) (pt vec.V, decided, nonEmpty bool) {
	wi := -1
	for i, s := range sets {
		if s.Len() == 1 {
			wi = i
			break
		}
	}
	if wi < 0 {
		return nil, false, false
	}
	w := sets[wi].At(0)
	switch it.Kind {
	case HullExact:
		for i, s := range sets {
			if i == wi {
				continue
			}
			if !geom.InHull(w, s) {
				return nil, true, false
			}
		}
		return w.Clone(), true, true
	case HullKProj:
		for i, s := range sets {
			if i == wi {
				continue
			}
			if !InHullK(w, s, it.K) {
				return nil, true, false
			}
		}
		return w.Clone(), true, true
	default:
		// Accept-only: a singleton confines x to the delta-ball around w
		// but does not force x = w, so a failed membership test is not a
		// rejection — bail to the LP at the first subset that rejects w.
		for i, s := range sets {
			if i == wi {
				continue
			}
			if dist, _ := geom.DistP(w, s, it.P); dist > it.Delta {
				return nil, false, false
			}
		}
		return w.Clone(), true, true
	}
}

// solveLP builds (reusing sc.prob's storage) and solves the joint
// feasibility LP for the family.
func (it Intersector) solveLP(sets []*vec.Set, d int, sc *IntersectScratch) (vec.V, bool) {
	var prob *lp.Problem
	switch it.Kind {
	case HullExact:
		prob = buildHullIntersectionLPInto(sc.prob, sets)
	case HullKProj:
		prob, _ = buildKIntersectionLPInto(sc.prob, sets, it.K)
	default:
		delta := it.Delta
		var feasible bool
		prob, _, feasible = relaxedLPProblemInto(sc.prob, sets, it.P, &delta)
		if !feasible {
			return nil, false
		}
	}
	if prob == nil {
		return nil, false
	}
	sc.prob = prob
	res, err := prob.SolveWarm(&sc.warm)
	if err != nil {
		panic(err)
	}
	if res.Status != lp.Optimal {
		return nil, false
	}
	return vec.V(res.X[:d]).Clone(), true
}

// newOrReset routes LP construction through a reusable Problem when one
// is supplied.
func newOrReset(prob *lp.Problem, nv int) *lp.Problem {
	if prob == nil {
		return lp.NewProblem(nv)
	}
	prob.Reset(nv)
	return prob
}
