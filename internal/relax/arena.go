package relax

import (
	"sync"

	"relaxedbvc/internal/metrics"
)

// Arena observability: gets-vs-news is the sync.Pool churn of the
// joint-LP row builders (steady state: news flat, gets climbing — the
// sweep inner loop builds its constraint rows without allocating).
var (
	rowArenaGets = metrics.DefaultCounter("relax_row_arena_gets_total")
	rowArenaNews = metrics.DefaultCounter("relax_row_arena_news_total")
)

// rowScratch is the reusable buffer set of one joint-LP build: sparse
// row indices/values, a second pair for derived bound rows, the
// per-set variable offsets and a dense objective row. Pooled so the
// steady-state Γ/Ψ sweep builds LPs with zero allocations (the
// lp.Problem side reuses rows via its Reset free list).
type rowScratch struct {
	idx  []int
	val  []float64
	ci   []int
	cv   []float64
	offs [2][]int
	row  []float64
}

var rowScratchPool = sync.Pool{New: func() any {
	rowArenaNews.Inc()
	return new(rowScratch)
}}

func getRowScratch() *rowScratch {
	rowArenaGets.Inc()
	return rowScratchPool.Get().(*rowScratch)
}

func (rs *rowScratch) release() { rowScratchPool.Put(rs) }

// offsets returns the which-th reusable offset slice resized to n.
func (rs *rowScratch) offsets(which, n int) []int {
	s := rs.offs[which]
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	rs.offs[which] = s
	return s
}

// zeroRow returns the reusable dense row resized to n and zeroed.
func (rs *rowScratch) zeroRow(n int) []float64 {
	if cap(rs.row) < n {
		rs.row = make([]float64, n)
	}
	rs.row = rs.row[:n]
	clear(rs.row)
	return rs.row
}
