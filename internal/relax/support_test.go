package relax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/vec"
)

func TestSupportPointSingleHull(t *testing.T) {
	tri := vec.NewSet(vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 3))
	pt, ok := SupportPoint([]*vec.Set{tri}, vec.Of(1, 0))
	if !ok || math.Abs(pt[0]-2) > 1e-8 {
		t.Fatalf("support in +x = %v (ok=%v)", pt, ok)
	}
	pt, ok = SupportPoint([]*vec.Set{tri}, vec.Of(0, 1))
	if !ok || math.Abs(pt[1]-3) > 1e-8 {
		t.Fatalf("support in +y = %v", pt)
	}
	// Diagonal direction: the maximizer of x+y over the triangle is a
	// vertex of the hypotenuse (or any point on it when tied — here
	// (0,3) wins since 0+3 > 2+0).
	pt, ok = SupportPoint([]*vec.Set{tri}, vec.Of(1, 1))
	if !ok || math.Abs(pt[0]+pt[1]-3) > 1e-8 {
		t.Fatalf("support in (1,1) = %v", pt)
	}
}

func TestSupportPointIntersection(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0), vec.Of(4, 0), vec.Of(0, 4), vec.Of(4, 4))
	b := vec.NewSet(vec.Of(2, 2), vec.Of(6, 2), vec.Of(2, 6), vec.Of(6, 6))
	// Intersection is the square [2,4]^2.
	pt, ok := SupportPoint([]*vec.Set{a, b}, vec.Of(1, 0))
	if !ok || math.Abs(pt[0]-4) > 1e-8 {
		t.Fatalf("support = %v", pt)
	}
	pt, ok = SupportPoint([]*vec.Set{a, b}, vec.Of(-1, -1))
	if !ok || math.Abs(pt[0]-2) > 1e-8 || math.Abs(pt[1]-2) > 1e-8 {
		t.Fatalf("support = %v", pt)
	}
}

func TestSupportPointEmptyCases(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(5, 5))
	if _, ok := SupportPoint([]*vec.Set{a, b}, vec.Of(1, 0)); ok {
		t.Error("support over empty intersection")
	}
	if _, ok := SupportPoint([]*vec.Set{a, vec.NewSet()}, vec.Of(1, 0)); ok {
		t.Error("support over family with empty member")
	}
	for name, fn := range map[string]func(){
		"empty family": func() { SupportPoint(nil, vec.Of(1)) },
		"dim mismatch": func() { SupportPoint([]*vec.Set{a}, vec.Of(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGammaSupportPoint(t *testing.T) {
	// Gamma of 4 points in R^1 with f=1: the interval between the 2nd
	// and 3rd order statistics.
	y := vec.NewSet(vec.Of(1), vec.Of(2), vec.Of(5), vec.Of(9))
	hi, ok := GammaSupportPoint(y, 1, vec.Of(1))
	if !ok || math.Abs(hi[0]-5) > 1e-8 {
		t.Fatalf("upper support = %v", hi)
	}
	lo, ok := GammaSupportPoint(y, 1, vec.Of(-1))
	if !ok || math.Abs(lo[0]-2) > 1e-8 {
		t.Fatalf("lower support = %v", lo)
	}
}

// Property: a support point is feasible (in every hull) and no feasible
// probe beats it in the chosen direction.
func TestPropertySupportPointOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	for trial := 0; trial < 20; trial++ {
		d := 2
		a := vec.NewSet(randVec(rng, d, 2), randVec(rng, d, 2), randVec(rng, d, 2), randVec(rng, d, 2))
		b := vec.NewSet(randVec(rng, d, 2), randVec(rng, d, 2), randVec(rng, d, 2), randVec(rng, d, 2))
		fam := []*vec.Set{a, b}
		dir := randVec(rng, d, 1)
		pt, ok := SupportPoint(fam, dir)
		if !ok {
			continue
		}
		for _, s := range fam {
			if dd, _ := geom.Dist2(pt, s); dd > 1e-6 {
				t.Fatalf("support point infeasible by %v", dd)
			}
		}
		// Probe: random feasible points (via intersection LP) must not
		// score higher.
		probe, okP := IntersectHulls(fam)
		if okP && dir.Dot(probe) > dir.Dot(pt)+1e-6 {
			t.Fatalf("probe %v beats support %v in direction %v", probe, pt, dir)
		}
	}
}

func TestMinIntersectionDeltaInfeasiblePanic(t *testing.T) {
	// MinIntersectionDelta with a structurally empty set (one member
	// empty) panics per its contract.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty member set")
		}
	}()
	MinIntersectionDelta([]*vec.Set{vec.NewSet()}, math.Inf(1))
}

func TestIntersectKHullsEmptyMember(t *testing.T) {
	if _, ok := IntersectKHulls([]*vec.Set{vec.NewSet(vec.Of(1, 2)), vec.NewSet()}, 1); ok {
		t.Fatal("intersection with empty member should be empty")
	}
	if _, ok := IntersectRelaxedHulls([]*vec.Set{vec.NewSet()}, 1, math.Inf(1)); ok {
		t.Fatal("relaxed intersection with empty member should be empty")
	}
}
