package relax

import (
	"math"

	"relaxedbvc/internal/lp"
	"relaxedbvc/internal/vec"
)

// ExtremizeKCoordinate computes the minimum and maximum value of
// coordinate `coord` over the intersection of the k-relaxed hulls of the
// sets. feasible=false when the intersection is empty. Values of
// -Inf/+Inf indicate the coordinate is unbounded over the intersection
// (impossible for k = d but possible for k < d, where the relaxed hulls
// are unbounded cylinders).
//
// This implements the per-coordinate "Observations" of the proofs of
// Theorems 3 and 4: e.g. for the Appendix B matrix, the minimum of
// coordinate 1 over Psi^1(S) is 2*eps while its maximum over Psi^2(S) is
// 0, certifying the epsilon-agreement violation.
func ExtremizeKCoordinate(sets []*vec.Set, k, coord int) (lo, hi float64, feasible bool) {
	build := func() (*lp.Problem, int) { return buildKIntersectionLP(sets, k) }
	return extremize(build, coord)
}

// ExtremizeRelaxedCoordinate is the (delta,p)-relaxed analogue for
// p in {1, +Inf}: min/max of the coordinate over the intersection of the
// relaxed hulls.
func ExtremizeRelaxedCoordinate(sets []*vec.Set, delta, p float64, coord int) (lo, hi float64, feasible bool) {
	build := func() (*lp.Problem, int) {
		d := delta
		return buildRelaxedLP(sets, p, &d)
	}
	return extremize(build, coord)
}

func extremize(build func() (*lp.Problem, int), coord int) (lo, hi float64, feasible bool) {
	solve := func(sense lp.Sense) (float64, bool, bool) {
		prob, d := build()
		if prob == nil {
			return 0, false, false
		}
		if coord < 0 || coord >= d {
			panic("relax: extremize coordinate out of range")
		}
		obj := make([]float64, prob.NumVars())
		obj[coord] = 1
		prob.SetObjective(obj, sense)
		res, err := prob.Solve()
		if err != nil {
			panic(err)
		}
		switch res.Status {
		case lp.Optimal:
			return res.X[coord], true, true
		case lp.Unbounded:
			return 0, false, true
		default:
			return 0, false, false
		}
	}
	loV, loBounded, feasible := solve(lp.Minimize)
	if !feasible {
		return 0, 0, false
	}
	hiV, hiBounded, _ := solve(lp.Maximize)
	lo, hi = math.Inf(-1), math.Inf(1)
	if loBounded {
		lo = loV
	}
	if hiBounded {
		hi = hiV
	}
	return lo, hi, true
}

// buildKIntersectionLP constructs the feasibility LP of IntersectKHulls
// without solving it. Returns (nil, d) when a set is empty (trivially
// infeasible).
func buildKIntersectionLP(sets []*vec.Set, k int) (*lp.Problem, int) {
	return buildKIntersectionLPInto(nil, sets, k)
}

// buildKIntersectionLPInto is buildKIntersectionLP writing into a
// reusable Problem (nil allocates a fresh one).
func buildKIntersectionLPInto(reuse *lp.Problem, sets []*vec.Set, k int) (*lp.Problem, int) {
	if len(sets) == 0 {
		panic("relax: empty family")
	}
	d := sets[0].Dim()
	if k < 1 || k > d {
		panic("relax: k out of range")
	}
	var blocks []projBlock
	for _, s := range sets {
		if s.Len() == 0 {
			return nil, d
		}
		if s.Dim() != d {
			panic("relax: dimension mismatch")
		}
		vec.Combinations(d, k, func(D []int) bool {
			blocks = append(blocks, projBlock{set: s, D: append([]int(nil), D...)})
			return true
		})
	}
	nv := d
	rs := getRowScratch()
	defer rs.release()
	offsets := rs.offsets(0, len(blocks))
	for i, b := range blocks {
		offsets[i] = nv
		nv += b.set.Len()
	}
	p := newOrReset(reuse, nv)
	for j := 0; j < d; j++ {
		p.SetFree(j)
	}
	for i, b := range blocks {
		m := b.set.Len()
		rs.idx, rs.val = rs.idx[:0], rs.val[:0]
		for t := 0; t < m; t++ {
			rs.idx = append(rs.idx, offsets[i]+t)
			rs.val = append(rs.val, 1)
		}
		p.AddSparseConstraint(rs.idx, rs.val, lp.EQ, 1)
		for _, j := range b.D {
			rs.ci, rs.cv = rs.ci[:0], rs.cv[:0]
			for t := 0; t < m; t++ {
				rs.ci = append(rs.ci, offsets[i]+t)
				rs.cv = append(rs.cv, b.set.At(t)[j])
			}
			rs.ci = append(rs.ci, j)
			rs.cv = append(rs.cv, -1)
			p.AddSparseConstraint(rs.ci, rs.cv, lp.EQ, 0)
		}
	}
	return p, d
}

// buildRelaxedLP constructs the LP of relaxedLP without solving; the
// delta pointer semantics match relaxedLP (nil = minimize delta, which is
// not meaningful here, so extremize callers always pass a fixed delta).
func buildRelaxedLP(sets []*vec.Set, p float64, fixedDelta *float64) (*lp.Problem, int) {
	prob, d, feasiblePrecheck := relaxedLPProblem(sets, p, fixedDelta)
	if !feasiblePrecheck {
		return nil, d
	}
	return prob, d
}

// SupportPoint returns the maximizer of <dir, x> over the intersection of
// the convex hulls of the sets, or ok=false when the intersection is
// empty. Because the intersection of hulls is a bounded polytope, the
// maximum always exists when the intersection is non-empty. The returned
// point is an extreme point of the intersection in direction dir, used by
// convex hull consensus to build identical inner approximations of
// Gamma(S) at every process.
func SupportPoint(sets []*vec.Set, dir vec.V) (vec.V, bool) {
	if len(sets) == 0 {
		panic("relax: empty family")
	}
	d := sets[0].Dim()
	if dir.Dim() != d {
		panic("relax: SupportPoint direction dimension mismatch")
	}
	prob := buildHullIntersectionLP(sets)
	if prob == nil {
		return nil, false
	}
	obj := make([]float64, prob.NumVars())
	copy(obj[:d], dir)
	prob.SetObjective(obj, lp.Maximize)
	res, err := prob.Solve()
	if err != nil {
		panic(err)
	}
	if res.Status != lp.Optimal {
		return nil, false
	}
	return vec.V(res.X[:d]).Clone(), true
}

// buildHullIntersectionLP constructs the IntersectHulls feasibility LP
// without solving it (x in variables [0,d)). Returns nil when a set is
// empty.
func buildHullIntersectionLP(sets []*vec.Set) *lp.Problem {
	return buildHullIntersectionLPInto(nil, sets)
}

// buildHullIntersectionLPInto is buildHullIntersectionLP writing into a
// reusable Problem (nil allocates a fresh one).
func buildHullIntersectionLPInto(reuse *lp.Problem, sets []*vec.Set) *lp.Problem {
	d := sets[0].Dim()
	nv := d
	rs := getRowScratch()
	defer rs.release()
	offsets := rs.offsets(0, len(sets))
	for i, s := range sets {
		if s.Len() == 0 {
			return nil
		}
		if s.Dim() != d {
			panic("relax: dimension mismatch")
		}
		offsets[i] = nv
		nv += s.Len()
	}
	p := newOrReset(reuse, nv)
	for j := 0; j < d; j++ {
		p.SetFree(j)
	}
	for i, s := range sets {
		m := s.Len()
		rs.idx, rs.val = rs.idx[:0], rs.val[:0]
		for t := 0; t < m; t++ {
			rs.idx = append(rs.idx, offsets[i]+t)
			rs.val = append(rs.val, 1)
		}
		p.AddSparseConstraint(rs.idx, rs.val, lp.EQ, 1)
		for j := 0; j < d; j++ {
			rs.ci, rs.cv = rs.ci[:0], rs.cv[:0]
			for t := 0; t < m; t++ {
				rs.ci = append(rs.ci, offsets[i]+t)
				rs.cv = append(rs.cv, s.At(t)[j])
			}
			rs.ci = append(rs.ci, j)
			rs.cv = append(rs.cv, -1)
			p.AddSparseConstraint(rs.ci, rs.cv, lp.EQ, 0)
		}
	}
	return p
}

// GammaSupportPoint maximizes <dir, x> over Gamma(Y) with parameter f.
func GammaSupportPoint(y *vec.Set, f int, dir vec.V) (vec.V, bool) {
	return SupportPoint(DroppedSubsets(y, f), dir)
}
