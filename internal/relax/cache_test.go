package relax

import (
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/vec"
)

func fuzzSet(rng *rand.Rand, n, d int) *vec.Set {
	pts := make([]vec.V, n)
	for i := range pts {
		p := vec.New(d)
		for k := range p {
			p[k] = rng.NormFloat64() * 2
		}
		pts[i] = p
	}
	return vec.NewSet(pts...)
}

// TestGammaPointCacheBitForBit fuzzes sets and asserts the memoized
// GammaPoint and DeltaStarPoly agree bit for bit with the uncached
// computation, cold and warm.
func TestGammaPointCacheBitForBit(t *testing.T) {
	defer SetCaching(true)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		d := 1 + rng.Intn(2)
		f := 1
		n := (d+1)*f + 1 + rng.Intn(3)
		s := fuzzSet(rng, n, d)

		SetCaching(false)
		wantPt, wantOK := GammaPoint(s, f)
		wantDelta, wantDP := DeltaStarPoly(s, f, math.Inf(1))

		SetCaching(true)
		ResetCache()
		for pass := 0; pass < 2; pass++ {
			gotPt, gotOK := GammaPoint(s, f)
			if gotOK != wantOK {
				t.Fatalf("trial %d pass %d: GammaPoint ok cached=%v uncached=%v", trial, pass, gotOK, wantOK)
			}
			for k := range wantPt {
				if math.Float64bits(gotPt[k]) != math.Float64bits(wantPt[k]) {
					t.Fatalf("trial %d pass %d: GammaPoint coord %d cached=%v uncached=%v",
						trial, pass, k, gotPt[k], wantPt[k])
				}
			}
			gotDelta, gotDP := DeltaStarPoly(s, f, math.Inf(1))
			if math.Float64bits(gotDelta) != math.Float64bits(wantDelta) {
				t.Fatalf("trial %d pass %d: DeltaStarPoly cached=%v uncached=%v", trial, pass, gotDelta, wantDelta)
			}
			for k := range wantDP {
				if math.Float64bits(gotDP[k]) != math.Float64bits(wantDP[k]) {
					t.Fatalf("trial %d pass %d: DeltaStarPoly point coord %d differs", trial, pass, k)
				}
			}
		}
	}
}

// TestGammaPointCacheClone ensures callers cannot corrupt cached points.
func TestGammaPointCacheClone(t *testing.T) {
	defer SetCaching(true)
	SetCaching(true)
	ResetCache()
	rng := rand.New(rand.NewSource(5))
	s := fuzzSet(rng, 5, 1)
	pt, ok := GammaPoint(s, 1)
	if !ok {
		t.Skip("empty Gamma on this seed")
	}
	want := pt[0]
	pt[0] = math.NaN()
	pt2, _ := GammaPoint(s, 1)
	if math.IsNaN(pt2[0]) || pt2[0] != want {
		t.Fatal("mutating a returned point corrupted the cached Gamma entry")
	}
}
