package relax

import (
	"math"
	"testing"

	"relaxedbvc/internal/vec"
)

func TestExtremizeKCoordinateFullK(t *testing.T) {
	tri := vec.NewSet(vec.Of(0, 0), vec.Of(2, 0), vec.Of(0, 3))
	lo, hi, ok := ExtremizeKCoordinate([]*vec.Set{tri}, 2, 0)
	if !ok {
		t.Fatal("infeasible")
	}
	if math.Abs(lo-0) > 1e-8 || math.Abs(hi-2) > 1e-8 {
		t.Errorf("coord 0 range [%v, %v], want [0, 2]", lo, hi)
	}
	lo, hi, ok = ExtremizeKCoordinate([]*vec.Set{tri}, 2, 1)
	if !ok || math.Abs(lo) > 1e-8 || math.Abs(hi-3) > 1e-8 {
		t.Errorf("coord 1 range [%v, %v]", lo, hi)
	}
}

func TestExtremizeKCoordinateK1Box(t *testing.T) {
	s := vec.NewSet(vec.Of(0, 0), vec.Of(1, 1))
	lo, hi, ok := ExtremizeKCoordinate([]*vec.Set{s}, 1, 0)
	if !ok || math.Abs(lo) > 1e-8 || math.Abs(hi-1) > 1e-8 {
		t.Errorf("H_1 box coord range [%v,%v]", lo, hi)
	}
}

func TestExtremizeKCoordinateInfeasible(t *testing.T) {
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(5, 5))
	if _, _, ok := ExtremizeKCoordinate([]*vec.Set{a, b}, 2, 0); ok {
		t.Error("disjoint singletons feasible")
	}
}

func TestExtremizeRelaxedCoordinate(t *testing.T) {
	s := vec.NewSet(vec.Of(3, 4))
	lo, hi, ok := ExtremizeRelaxedCoordinate([]*vec.Set{s}, 0.5, math.Inf(1), 0)
	if !ok {
		t.Fatal("infeasible")
	}
	if math.Abs(lo-2.5) > 1e-8 || math.Abs(hi-3.5) > 1e-8 {
		t.Errorf("range [%v,%v], want [2.5, 3.5]", lo, hi)
	}
	// Intersection of two relaxed singleton hulls.
	a := vec.NewSet(vec.Of(0, 0))
	b := vec.NewSet(vec.Of(2, 0))
	lo, hi, ok = ExtremizeRelaxedCoordinate([]*vec.Set{a, b}, 1, math.Inf(1), 0)
	if !ok || math.Abs(lo-1) > 1e-8 || math.Abs(hi-1) > 1e-8 {
		t.Errorf("pinched range [%v,%v], want [1,1] (ok=%v)", lo, hi, ok)
	}
	if _, _, ok := ExtremizeRelaxedCoordinate([]*vec.Set{a, b}, 0.4, math.Inf(1), 0); ok {
		t.Error("infeasible delta accepted")
	}
}

func TestExtremizeCoordinateOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad coord did not panic")
		}
	}()
	ExtremizeKCoordinate([]*vec.Set{vec.NewSet(vec.Of(0))}, 1, 5)
}
