package relax

import (
	"relaxedbvc/internal/memo"
	"relaxedbvc/internal/vec"
)

// GammaPoint and DeltaStarPoly enumerate exponentially many dropped
// subsets and solve one LP per subset, and consensus runs re-issue them
// with identical (S, f) arguments across processes and trials. The memo
// table keys on the exact binary encoding of the inputs, so a hit is
// bit-for-bit what the solver would recompute. Safe for concurrent use;
// on by default.
var cache = memo.New(0)

func init() { cache.RegisterMetrics("relax") }

const (
	opGamma     = 'G'
	opDeltaPoly = 'D'
)

// SetCaching enables or disables the relax memo cache.
func SetCaching(on bool) { cache.SetEnabled(on) }

// CacheStats reports the relax cache counters.
func CacheStats() memo.Stats { return cache.Stats() }

// ResetCache drops all cached relax results.
func ResetCache() { cache.Reset() }

type gammaEntry struct {
	pt vec.V
	ok bool
}

type deltaEntry struct {
	delta float64
	pt    vec.V
}

// setKey builds a pooled key over the exact binary encoding of (op, f,
// p, S). The caller must Release it.
func setKey(op byte, s *vec.Set, f int, p float64) *memo.Key {
	k := memo.GetKey(op)
	k.Int(f)
	k.Float(p)
	k.Int(s.Len())
	for i := 0; i < s.Len(); i++ {
		k.Floats(s.At(i))
	}
	return k
}
