module relaxedbvc

go 1.22
