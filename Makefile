# Convenience targets; everything also works with plain `go` commands.

GO ?= go

.PHONY: all build test test-short bench experiments fuzz vet fmt cover clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per reproduced table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem

# Regenerate every experiment table (E1-E20); fails if any claim breaks.
experiments:
	$(GO) run ./cmd/bvcbench

experiments-quick:
	$(GO) run ./cmd/bvcbench -quick -trials 3

# Randomized invariant hammering across all protocol modes.
fuzz:
	$(GO) run ./cmd/bvcfuzz -runs 200

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
