# Convenience targets; everything also works with plain `go` commands.

GO ?= go

.PHONY: all build test test-short race bench bench-batch bench-kernels bench-kernels-profile bench-guard bench-guard-kernels bench-acs bench-guard-acs experiments fuzz soak soak-replay soak-acs vet lint lint-strict fmt cover cover-html clean

all: vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector (the batch engine, kernel caches
# and trace recorder are exercised concurrently).
race:
	$(GO) test -race ./...

# One benchmark per reproduced table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem

# Benchmark the batch execution engine: 200-trial delta-relaxed sweep,
# sequential-uncached vs concurrent-cached, written to BENCH_batch.json.
bench-batch:
	$(GO) run ./cmd/bvcbench -batch-bench -batch-out BENCH_batch.json

# Benchmark kernel parallelism: each combinatorial geometry kernel at
# 1 worker vs the full pool, with bit-identical-output verification and
# the zero-alloc warm cache lookup measurement, written to
# BENCH_kernels.json.
bench-kernels:
	$(GO) run ./cmd/bvcbench -kernel-bench -kernel-out BENCH_kernels.json

# Kernel bench under the profiler: same sweep, but the whole run (legacy,
# sequential and parallel lanes) records a CPU profile and a post-run
# heap profile into prof/. Inspect with
#   go tool pprof prof/cpu.pprof
# The report JSON goes to a scratch path so a profiled run never
# perturbs the committed baseline.
bench-kernels-profile:
	$(GO) run ./cmd/bvcbench -kernel-bench -kernel-profile prof \
		-kernel-out prof/BENCH_kernels.json

# Bench-regression gate: rerun the sweep and compare against the
# committed BENCH_batch.json; fails on >25% throughput loss. Refresh the
# baseline for a new machine with `go run ./scripts -update`.
bench-guard:
	$(GO) run ./scripts

# Kernel half of the gate: guard BENCH_kernels.json (output parity,
# zero-alloc cache hits, per-kernel throughput, multicore speedup
# gates). Refresh with `go run ./scripts -kernels -update`.
bench-guard-kernels:
	$(GO) run ./scripts -kernels

# Benchmark the streaming ACS layer: epoch-batch throughput sweep on
# the deterministic simulation with a scripted equivocator, written to
# BENCH_acs.json.
bench-acs:
	$(GO) run ./scripts -acs -update

# ACS third of the gate: guard BENCH_acs.json (cross-run stream
# determinism plus per-case epochs/sec). Refresh with
# `go run ./scripts -acs -update`.
bench-guard-acs:
	$(GO) run ./scripts -acs

# Regenerate every experiment table (E1-E21); fails if any claim breaks.
experiments:
	$(GO) run ./cmd/bvcbench

experiments-quick:
	$(GO) run ./cmd/bvcbench -quick -trials 3

# Randomized invariant hammering across all protocol modes.
fuzz:
	$(GO) run ./cmd/bvcfuzz -runs 200

# Deterministic fleet soak: 50k seeds across 4 worker subprocesses
# under the mixed fault regime, coverage-guided mutation, discoveries
# written into corpus/. Interrupt with ctrl-C and rerun to resume from
# the manifest; the gate fails on any unshrunk failure.
soak:
	$(GO) run ./cmd/bvcsoak -budget 50000 -shards 4 -regime mixed \
		-corpus corpus -manifest soak.manifest -summary soak-summary.json
	$(GO) run ./scripts -soak -soak-summary soak-summary.json

# Replay the committed corpus: every shrunk reproducer and interesting
# seed must still produce its recorded outcome and signature.
soak-replay:
	$(GO) run ./cmd/bvcsoak -replay-corpus -corpus corpus

# Streaming-ACS soak: hammer only the ACS protocol (it never joins the
# default roster — that would shift historic corpus seeds).
soak-acs:
	$(GO) run ./cmd/bvcsoak -budget 10000 -shards 4 -regime mixed \
		-protocols acs -corpus corpus -manifest soak-acs.manifest \
		-summary soak-acs-summary.json
	$(GO) run ./scripts -soak -soak-summary soak-acs-summary.json

vet:
	$(GO) vet ./...

# The repo's own static-analysis suite (internal/analysis, driven by
# cmd/bvclint): twelve passes — the intraprocedural six (nodeterminism,
# maporder, errwrap, floateq, seedflow, metriclabel) plus the
# interprocedural/protocol five (quorumgate, locksafe, ctxleak,
# atomicmix, chanlife) and the staleness audit. Suppress one line with
#   //bvclint:allow <analyzer> -- <justification>
# or add a whole-file entry to lint/exceptions.txt; a suppression that
# suppresses nothing is itself reported. See DESIGN.md §9.
lint:
	$(GO) run ./cmd/bvclint ./...

# Strict scope: the concurrency/protocol analyzers additionally cover
# the binaries (cmd/bvcnode, bvcsoak, bvcbench, bvcfuzz, bvcsim) and
# scripts/, not just the protocol packages.
lint-strict:
	$(GO) run ./cmd/bvclint -strict ./...

fmt:
	gofmt -w .

# Coverage profile (CI uploads coverprofile.out as an artifact).
cover:
	$(GO) test -coverprofile=coverprofile.out -covermode=atomic ./...
	$(GO) tool cover -func=coverprofile.out | tail -1

cover-html: cover
	$(GO) tool cover -html=coverprofile.out -o coverage.html

clean:
	$(GO) clean ./...
