# Convenience targets; everything also works with plain `go` commands.

GO ?= go

.PHONY: all build test test-short race bench bench-batch experiments fuzz vet fmt cover clean

all: vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector (the batch engine, kernel caches
# and trace recorder are exercised concurrently).
race:
	$(GO) test -race ./...

# One benchmark per reproduced table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem

# Benchmark the batch execution engine: 200-trial delta-relaxed sweep,
# sequential-uncached vs concurrent-cached, written to BENCH_batch.json.
bench-batch:
	$(GO) run ./cmd/bvcbench -batch-bench -batch-out BENCH_batch.json

# Regenerate every experiment table (E1-E20); fails if any claim breaks.
experiments:
	$(GO) run ./cmd/bvcbench

experiments-quick:
	$(GO) run ./cmd/bvcbench -quick -trials 3

# Randomized invariant hammering across all protocol modes.
fuzz:
	$(GO) run ./cmd/bvcfuzz -runs 200

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
