package relaxedbvc

// Benchmark harness: one benchmark per reproduced table/figure
// (BenchmarkE1..E14 drive the experiment runners of DESIGN.md's index),
// plus micro-benchmarks for the ablations called out in DESIGN.md
// (delta* closed form vs iterative, EIG vs signed broadcast, Gamma LP vs
// Tverberg search, L2 distance solvers, async schedules).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks also assert that the experiment passed, so a bench
// run doubles as a full reproduction run.

import (
	"context"

	"fmt"
	"math"
	"math/rand"
	"testing"

	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/experiments"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := experiments.Options{Seed: 11, Trials: 1, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := experiments.Run(id, opt)
		if o == nil || !o.Pass {
			b.Fatalf("experiment %s failed", id)
		}
	}
}

// One benchmark per table/figure of the reproduction index.

func BenchmarkE1ExactBVC(b *testing.B)        { benchExperiment(b, "E1") }
func BenchmarkE2KRelaxedSync(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE3KRelaxedAsync(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4DeltaConstSync(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5DeltaConstAsync(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Table1(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7Inradius(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8FacetRadii(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Holder(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10AsyncRVA(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Impossibility(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12Tverberg(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Degenerate(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14Containment(b *testing.B)    { benchExperiment(b, "E14") }

// --- Ablation micro-benchmarks ---

// delta* solver: closed form (Lemma 13) vs generic iterative minimax.
func BenchmarkDeltaStarClosedForm(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	s := vec.NewSet(workload.Gaussian(rng, 4, 3, 2)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		minimax.DeltaStar2(s, 1)
	}
}

func BenchmarkDeltaStarIterative(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	s := vec.NewSet(workload.Gaussian(rng, 4, 3, 2)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		minimax.DeltaStar2Iterative(s, 1)
	}
}

// L2 point-to-hull distance: Wolfe min-norm point vs LP-based L1/Linf.
func BenchmarkDist2Wolfe(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	s := vec.NewSet(workload.Gaussian(rng, 8, 4, 2)...)
	q := workload.Gaussian(rng, 1, 4, 4)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.Dist2(q, s)
	}
}

func BenchmarkDistInfLP(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	s := vec.NewSet(workload.Gaussian(rng, 8, 4, 2)...)
	q := workload.Gaussian(rng, 1, 4, 4)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.DistInf(q, s)
	}
}

// Gamma point: direct big-LP vs Tverberg partition search.
func BenchmarkGammaPointLP(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	s := vec.NewSet(workload.Gaussian(rng, 7, 2, 2)...) // n=(d+1)f+1 with d=2,f=2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := relax.GammaPoint(s, 2); !ok {
			b.Fatal("Gamma empty above the bound")
		}
	}
}

func BenchmarkGammaPointTverberg(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	s := vec.NewSet(workload.Gaussian(rng, 7, 2, 2)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tverberg.Point(s, 2); !ok {
			b.Fatal("no Tverberg point above the bound")
		}
	}
}

// Broadcast: oral messages (EIG) vs signed (Dolev-Strong), message cost.
func BenchmarkBroadcastEIG(b *testing.B) {
	n, f := 5, 1
	inputs := make([][]byte, n)
	for i := range inputs {
		inputs[i] = broadcast.EncodeVec(vec.Of(float64(i), 1))
	}
	b.ReportAllocs()
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := broadcast.RunAllToAllEIG(n, f, inputs, nil, broadcast.EncodeVec(vec.New(2)), nil)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Messages
	}
	b.ReportMetric(float64(msgs), "msgs/run")
}

func BenchmarkBroadcastDolevStrong(b *testing.B) {
	n, f := 5, 1
	scheme := broadcast.NewSigScheme(n, 1)
	b.ReportAllocs()
	var msgs int
	for i := 0; i < b.N; i++ {
		// n commanders to match the all-to-all EIG workload.
		total := 0
		for c := 0; c < n; c++ {
			res, err := broadcast.RunDolevStrong(n, f, c, broadcast.EncodeVec(vec.Of(float64(c), 1)), scheme, nil, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Messages
		}
		msgs = total
	}
	b.ReportMetric(float64(msgs), "msgs/run")
}

// Full protocol benchmarks across the headline configurations.
func BenchmarkProtocolExactBVC(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	cfg := &consensus.SyncConfig{N: 5, F: 1, D: 3, Inputs: workload.Gaussian(rng, 5, 3, 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consensus.RunExactBVC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolALGO(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	cfg := &consensus.SyncConfig{N: 4, F: 1, D: 3, Inputs: workload.Gaussian(rng, 4, 3, 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolKRelaxed(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	cfg := &consensus.SyncConfig{N: 5, F: 1, D: 3, Inputs: workload.Gaussian(rng, 5, 3, 2)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consensus.RunKRelaxedBVC(context.Background(), cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Async schedules ablation: RVA convergence cost under different
// adversarial delivery orders.
func benchAsyncSchedule(b *testing.B, mk func(i int) sched.Schedule) {
	b.Helper()
	rng := rand.New(rand.NewSource(27))
	inputs := workload.Gaussian(rng, 5, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := &consensus.AsyncConfig{
			N: 5, F: 1, D: 2, Inputs: inputs, Rounds: 6,
			Mode: consensus.ModeExact, Schedule: mk(i),
		}
		if _, err := consensus.RunAsyncBVC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncFIFO(b *testing.B) {
	benchAsyncSchedule(b, func(int) sched.Schedule { return sched.FIFOSchedule{} })
}

func BenchmarkAsyncLIFO(b *testing.B) {
	benchAsyncSchedule(b, func(int) sched.Schedule { return sched.LIFOSchedule{} })
}

func BenchmarkAsyncRandom(b *testing.B) {
	benchAsyncSchedule(b, func(i int) sched.Schedule {
		return &sched.RandomSchedule{Rng: rand.New(rand.NewSource(int64(i)))}
	})
}

// Geometry micro-benchmarks that dominate the protocols' CPU profile.
func BenchmarkHullMembershipLP(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	s := vec.NewSet(workload.Gaussian(rng, 10, 5, 2)...)
	q := workload.Gaussian(rng, 1, 5, 1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.InHull(q, s)
	}
}

func BenchmarkPsiKFeasibility(b *testing.B) {
	s := vec.NewSet(workload.Theorem3Matrix(4, 1, 0.5)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := relax.PsiKPoint(s, 1, 2); ok {
			b.Fatal("proof matrix should empty Psi_2")
		}
	}
}

func BenchmarkDeltaStarInfLP(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	s := vec.NewSet(workload.Gaussian(rng, 5, 4, 2)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		relax.DeltaStarPoly(s, 1, math.Inf(1))
	}
}

func BenchmarkE15Footnote3(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16ConjectureSweep(b *testing.B) { benchExperiment(b, "E16") }

// Signed vs oral Step 1 at the protocol level.
func BenchmarkProtocolALGOSigned(b *testing.B) {
	rng := rand.New(rand.NewSource(30))
	cfg := &consensus.SyncConfig{
		N: 4, F: 1, D: 3,
		Inputs:          workload.Gaussian(rng, 4, 3, 2),
		SignedBroadcast: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// General-p delta* solver cost relative to the exact-norm paths.
func BenchmarkDeltaStarGeneralP3(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	s := vec.NewSet(workload.Gaussian(rng, 4, 3, 2)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		minimax.DeltaStarP(s, 1, 3)
	}
}

func BenchmarkE17ConvexHull(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18Iterative(b *testing.B) { benchExperiment(b, "E18") }

func BenchmarkProtocolIterative(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	cfg := &consensus.IterConfig{
		N: 5, F: 1, D: 2,
		Inputs: workload.Gaussian(rng, 5, 2, 3),
		Rounds: 8,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consensus.RunIterativeBVC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE19CostScaling(b *testing.B) { benchExperiment(b, "E19") }

func BenchmarkE20BoundTightness(b *testing.B) { benchExperiment(b, "E20") }

// --- Parametric sweeps (cost scaling curves) ---

// delta* closed form across dimension: the Lemma 13 path is O(d^3) from
// the matrix inverse.
func BenchmarkSweepDeltaStarByDimension(b *testing.B) {
	for _, d := range []int{2, 4, 6, 8, 12} {
		d := d
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := rand.New(rand.NewSource(41))
			s := vec.NewSet(workload.Gaussian(rng, d+1, d, 2)...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				minimax.DeltaStar2(s, 1)
			}
		})
	}
}

// Oral-messages broadcast across n at f = 1 (quadratic relay tree).
func BenchmarkSweepEIGByN(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := make([][]byte, n)
			for i := range inputs {
				inputs[i] = broadcast.EncodeVec(vec.Of(float64(i), 1))
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := broadcast.RunAllToAllEIG(n, 1, inputs, nil, broadcast.EncodeVec(vec.New(2)), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Wolfe L2 distance across hull size.
func BenchmarkSweepDist2ByHullSize(b *testing.B) {
	for _, m := range []int{4, 8, 16, 32} {
		m := m
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			s := vec.NewSet(workload.Gaussian(rng, m, 4, 2)...)
			q := workload.Gaussian(rng, 1, 4, 4)[0]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				geom.Dist2(q, s)
			}
		})
	}
}

// Gamma-point LP across f (the subset family is C(n, f)).
func BenchmarkSweepGammaByF(b *testing.B) {
	for _, f := range []int{1, 2} {
		f := f
		d := 2
		n := (d+1)*f + 1
		b.Run(fmt.Sprintf("f=%d_n=%d", f, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(43))
			s := vec.NewSet(workload.Gaussian(rng, n, d, 2)...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := relax.GammaPoint(s, f); !ok {
					b.Fatal("Gamma empty above the bound")
				}
			}
		})
	}
}

// Async RVA across rounds (message growth is linear in rounds).
func BenchmarkSweepAsyncByRounds(b *testing.B) {
	for _, rounds := range []int{2, 6, 12} {
		rounds := rounds
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			rng := rand.New(rand.NewSource(44))
			inputs := workload.Gaussian(rng, 5, 2, 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := &consensus.AsyncConfig{
					N: 5, F: 1, D: 2, Inputs: inputs, Rounds: rounds, Mode: consensus.ModeExact,
				}
				if _, err := consensus.RunAsyncBVC(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
