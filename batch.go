package relaxedbvc

// Batch execution: fan independent consensus instances across a bounded
// worker pool. The heavy lifting lives in internal/batch; this file is
// the public surface, phrased in terms of Spec and Result.

import (
	"context"
	"time"

	"relaxedbvc/internal/batch"
)

// Batch error sentinels, re-exported from the engine so errors.Is works
// across the API boundary.
var (
	// ErrTrialPanic wraps a recovered panic from one batch trial.
	ErrTrialPanic = batch.ErrPanic
	// ErrTrialNotStarted wraps the context error of trials still queued
	// when the batch context was canceled.
	ErrTrialNotStarted = batch.ErrNotStarted
)

// BatchOptions tunes RunBatch. The zero value is ready to use.
type BatchOptions struct {
	// Workers bounds the goroutine pool (0 = GOMAXPROCS, capped at the
	// spec count).
	Workers int
	// TrialTimeout, when positive, gives each spec its own deadline on
	// top of the batch context.
	TrialTimeout time.Duration
}

// BatchResult is the outcome of one spec in a batch.
type BatchResult struct {
	// Index is the spec's position in the input slice (results are
	// already in input order; the field makes that checkable).
	Index int
	// Result is the run's outcome (nil when Err != nil).
	Result *Result
	// Err is the run's error, a wrapped ErrTrialPanic, or a wrapped
	// ErrTrialNotStarted when the batch was canceled first.
	Err error
	// Elapsed is the spec's wall-clock duration (0 for unstarted specs).
	Elapsed time.Duration
}

// RunBatch executes every spec concurrently on a bounded worker pool and
// returns one BatchResult per spec, in input order regardless of
// scheduling. It never returns an error itself: per-spec failures
// (including panics and cancellation) are recorded in the corresponding
// BatchResult.Err.
//
// Trials share the process-wide geometry-kernel caches (see SetCaching),
// so batches with overlapping sub-problems — repeated configurations,
// common point sets — pay for each LP solve only once across the whole
// batch.
func RunBatch(ctx context.Context, opts BatchOptions, specs []Spec) []BatchResult {
	inner := batch.Map(ctx, batch.Options{
		Workers:      opts.Workers,
		TrialTimeout: opts.TrialTimeout,
	}, specs, func(tctx context.Context, spec Spec) (*Result, error) {
		return Run(tctx, spec)
	})
	out := make([]BatchResult, len(inner))
	for i, r := range inner {
		out[i] = BatchResult{Index: r.Index, Result: r.Value, Err: r.Err, Elapsed: r.Elapsed}
	}
	return out
}

// FirstBatchErr returns the first (lowest-index) error in a batch, or
// nil when every spec succeeded.
func FirstBatchErr(results []BatchResult) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
