package relaxedbvc_test

// Kernel parity property tests: the parallel combinatorial geometry
// kernels must return bit-identical results at workers=1 (the
// sequential scan) and workers=GOMAXPROCS (the chunked/first-hit
// parallel paths). Caching is disabled so the second worker setting
// cannot replay the first's memo entries — both settings do the full
// work. CI runs these under `-race -count=2` (see the "Kernel parity
// under -race" step) so a schedule-dependent race in the first-hit
// reductions cannot hide behind one lucky interleaving.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	bvc "relaxedbvc"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// parityWorkers is the parallel setting compared against 1 worker:
// GOMAXPROCS, raised to at least 4 so the parallel chunk/scan code
// paths are exercised even on single-core CI runners.
func parityWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 4 {
		return w
	}
	return 4
}

// setupKernelParity disables caching for the duration of the test (so
// both worker settings compute fresh) and restores the default worker
// and caching state afterwards.
func setupKernelParity(t *testing.T) {
	t.Helper()
	bvc.SetCaching(false)
	bvc.ResetCaches()
	t.Cleanup(func() {
		par.SetKernelWorkers(0)
		bvc.SetCaching(true)
		bvc.ResetCaches()
	})
}

func paritySet(rng *rand.Rand, n, d int) *vec.Set {
	pts := make([]vec.V, n)
	for i := range pts {
		v := vec.New(d)
		for j := range v {
			v[j] = rng.NormFloat64() * 2
		}
		pts[i] = v
	}
	return vec.NewSet(pts...)
}

// farPoint returns c shifted well outside any hull of the test sets.
func farPoint(c vec.V) vec.V {
	out := c.Clone()
	for j := range out {
		out[j] += 50
	}
	return out
}

func sameBits(a, b vec.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameBlocks(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestKernelParityPartition: the chunked parallel partition scan must
// return the sequential scan's first hit — same blocks, same point,
// same feasibility bit — on both feasible (n = (d+1)f + 1, Theorem 7)
// and infeasible (n = (d+1)f general position, Section 8 tightness)
// instances.
func TestKernelParityPartition(t *testing.T) {
	setupKernelParity(t)
	W := parityWorkers()
	cases := []struct{ n, d, f int }{
		{7, 2, 2}, // feasible regime
		{8, 3, 2}, // infeasible regime: full scan, worst case
		{9, 3, 2}, // feasible regime at the Theorem 7 bound
	}
	for seed := int64(0); seed < 4; seed++ {
		for _, c := range cases {
			rng := rand.New(rand.NewSource(seed))
			y := paritySet(rng, c.n, c.d)

			par.SetKernelWorkers(1)
			blocks1, pt1, ok1 := tverberg.Partition(y, c.f)
			par.SetKernelWorkers(W)
			blocksN, ptN, okN := tverberg.Partition(y, c.f)

			if ok1 != okN {
				t.Fatalf("seed %d n=%d d=%d f=%d: ok %v vs %v", seed, c.n, c.d, c.f, ok1, okN)
			}
			if !ok1 {
				continue
			}
			if !sameBlocks(blocks1, blocksN) {
				t.Errorf("seed %d n=%d d=%d f=%d: blocks differ:\n  1 worker: %v\n  %d workers: %v",
					seed, c.n, c.d, c.f, blocks1, W, blocksN)
			}
			if !sameBits(pt1, ptN) {
				t.Errorf("seed %d n=%d d=%d f=%d: points differ: %v vs %v",
					seed, c.n, c.d, c.f, pt1, ptN)
			}
		}
	}
}

// TestKernelParityInHullK: the parallel C(d,k) projection sweep must
// agree with the sequential conjunction for member and non-member
// queries alike.
func TestKernelParityInHullK(t *testing.T) {
	setupKernelParity(t)
	W := parityWorkers()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		const d, k = 9, 4 // C(9,4) = 126 projection subsets
		s := paritySet(rng, 13, d)
		center := vec.Mean(s.Points())
		queries := []vec.V{
			center,                        // member: every projection contains the mean
			vec.Lerp(center, s.At(0), .5), // member by convexity
			paritySet(rng, 1, d).At(0),    // random: either answer, must agree
			farPoint(center),              // far outside: early-exit path
		}
		for qi, q := range queries {
			par.SetKernelWorkers(1)
			in1 := relax.InHullK(q, s, k)
			par.SetKernelWorkers(W)
			inN := relax.InHullK(q, s, k)
			if in1 != inN {
				t.Errorf("seed %d query %d: InHullK %v at 1 worker, %v at %d workers",
					seed, qi, in1, inN, W)
			}
		}
	}
}

// TestKernelParityIntersectRelaxedHulls: the prefiltered relaxed-hull
// intersection decision — and the returned witness point — must be a
// pure function of the family, identical for every worker count.
func TestKernelParityIntersectRelaxedHulls(t *testing.T) {
	setupKernelParity(t)
	W := parityWorkers()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		y := paritySet(rng, 7, 2)
		family := relax.DroppedSubsets(y, 2) // C(7,2) = 21 subsets
		for _, p := range []float64{1, math.Inf(1)} {
			for _, delta := range []float64{0.01, 0.5, 4} {
				par.SetKernelWorkers(1)
				pt1, ok1 := relax.IntersectRelaxedHulls(family, delta, p)
				par.SetKernelWorkers(W)
				ptN, okN := relax.IntersectRelaxedHulls(family, delta, p)
				if ok1 != okN {
					t.Fatalf("seed %d p=%v delta=%v: ok %v vs %v", seed, p, delta, ok1, okN)
				}
				if ok1 && !sameBits(pt1, ptN) {
					t.Errorf("seed %d p=%v delta=%v: points differ: %v vs %v",
						seed, p, delta, pt1, ptN)
				}
			}
		}
	}
}

// TestKernelParityDeltaStarP: the δ* minimax descent fans its per-set
// distance probes and warm-start descents over the kernel workers; the
// index-ordered reductions must leave (δ, point) bit-identical to the
// sequential solver.
func TestKernelParityDeltaStarP(t *testing.T) {
	if testing.Short() {
		t.Skip("minimax descent is slow under -race; skipped in -short")
	}
	setupKernelParity(t)
	W := parityWorkers()
	for seed := int64(0); seed < 2; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		s := paritySet(rng, 7, 2) // C(7,5) = 21 dropped subsets per probe
		for _, p := range []float64{1, math.Inf(1)} {
			par.SetKernelWorkers(1)
			r1 := minimax.DeltaStarP(s, 2, p)
			par.SetKernelWorkers(W)
			rN := minimax.DeltaStarP(s, 2, p)
			if math.Float64bits(r1.Delta) != math.Float64bits(rN.Delta) {
				t.Errorf("seed %d p=%v: delta %v at 1 worker, %v at %d workers",
					seed, p, r1.Delta, rN.Delta, W)
			}
			if !sameBits(r1.Point, rN.Point) {
				t.Errorf("seed %d p=%v: points differ: %v vs %v", seed, p, r1.Point, rN.Point)
			}
		}
	}
}
