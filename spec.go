package relaxedbvc

// The unified front door of the library: one Spec describes any consensus
// instance — protocol, system size, inputs, adversary, network — and
// Run(ctx, spec) executes it with context cancellation and typed errors.
// The per-protocol Run* functions remain as thin deprecated wrappers.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/memo"
	"relaxedbvc/internal/metrics"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/par"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
)

// RunMetrics is the per-run metrics snapshot attached to every Result
// (see Result.Metrics). It aliases the internal metrics type so the
// observability layer stays dependency-free.
type RunMetrics = metrics.RunMetrics

// ServeDebug starts an HTTP server exposing net/http/pprof profiles and
// an expvar snapshot of the library's cumulative metrics registry at the
// given address (host:port; ":0" picks a free port). It returns the
// bound address. Intended for benchmarking and CI profiling, not
// production serving.
func ServeDebug(addr string) (string, error) { return metrics.ServeDebug(addr) }

// MetricsSnapshot returns a point-in-time copy of the library's
// cumulative metrics registry: consensus round/message counters, batch
// trial latency histograms, kernel cache hit/miss counts, LP pivot
// statistics. Snapshots are JSON-marshalable with a stable field order.
func MetricsSnapshot() *metrics.Snapshot { return metrics.Snap() }

// Protocol selects the consensus algorithm Run executes.
type Protocol int

const (
	// ProtocolDeltaRelaxed is Algorithm ALGO (Section 9): synchronous
	// (delta,p)-relaxed exact BVC with the smallest input-dependent delta.
	// The zero value, because it is the paper's headline algorithm.
	ProtocolDeltaRelaxed Protocol = iota
	// ProtocolExact is synchronous exact BVC (output in Gamma(S)).
	ProtocolExact
	// ProtocolKRelaxed is synchronous k-relaxed exact BVC (output in
	// Psi_k(S)); set Spec.K.
	ProtocolKRelaxed
	// ProtocolScalar is exact scalar Byzantine consensus (D must be 1).
	ProtocolScalar
	// ProtocolConvex is Byzantine convex hull consensus; set
	// Spec.Directions for the support-fan resolution.
	ProtocolConvex
	// ProtocolIterative is iterative approximate BVC (per-round estimate
	// exchange); set Spec.Rounds and optionally Spec.IterByzantine.
	ProtocolIterative
	// ProtocolAsync is asynchronous Relaxed Verified Averaging (or its
	// exact-validity baseline via Spec.Mode); set Spec.Rounds.
	ProtocolAsync
	// ProtocolK1Async is asynchronous 1-relaxed BVC via the per-coordinate
	// scalar reduction of Section 5.3.
	ProtocolK1Async
	// ProtocolACS is the streaming decision layer: Agreement on a Common
	// Subset (Ben-Or–Kelmer–Rabin; n parallel Bracha broadcasts plus one
	// binary agreement per slot) run once per epoch over Spec.Proposals,
	// each epoch's agreed subset reduced to one decided vector with the
	// delta*_p kernel. Decisions commit strictly in epoch order.
	ProtocolACS
)

// String returns the protocol's canonical name.
func (p Protocol) String() string {
	switch p {
	case ProtocolDeltaRelaxed:
		return "delta-relaxed"
	case ProtocolExact:
		return "exact"
	case ProtocolKRelaxed:
		return "k-relaxed"
	case ProtocolScalar:
		return "scalar"
	case ProtocolConvex:
		return "convex"
	case ProtocolIterative:
		return "iterative"
	case ProtocolAsync:
		return "async"
	case ProtocolK1Async:
		return "k1-async"
	case ProtocolACS:
		return "acs"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// Typed error sentinels. The consensus ones are re-exported from the
// implementation so errors.Is works across the API boundary.
var (
	ErrTooFewProcesses   = consensus.ErrTooFewProcesses
	ErrTooManyFaults     = consensus.ErrTooManyFaults
	ErrBadInputs         = consensus.ErrBadInputs
	ErrBadDimension      = consensus.ErrBadDimension
	ErrBadRounds         = consensus.ErrBadRounds
	ErrBadNorm           = consensus.ErrBadNorm
	ErrBadK              = consensus.ErrBadK
	ErrEmptyIntersection = consensus.ErrEmptyIntersection
	ErrCanceled          = consensus.ErrCanceled
	// ErrBadFaults: Spec.Faults has invalid parameters (probability
	// outside [0,1], inverted delay bounds, ...).
	ErrBadFaults = consensus.ErrBadFaults
	// ErrDeliveryViolated: the injected fault pattern broke the delivery
	// model the protocol assumes (a message was permanently lost, or
	// lockstep synchrony was violated). The run completed
	// deterministically but its outputs carry no guarantee.
	ErrDeliveryViolated = sched.ErrDeliveryViolated
	// ErrUnknownProtocol: Spec.Protocol is not one of the Protocol
	// constants.
	ErrUnknownProtocol = errors.New("relaxedbvc: unknown protocol")
)

// Spec describes one consensus instance for Run. Zero values select the
// documented defaults; fields irrelevant to the chosen Protocol are
// ignored.
type Spec struct {
	// Protocol selects the algorithm (default ProtocolDeltaRelaxed).
	Protocol Protocol

	// N, F, D are the process count, fault bound and vector dimension.
	N, F, D int
	// Inputs holds every process's input vector (len must be N).
	Inputs []Vector

	// K is the k-relaxation parameter (ProtocolKRelaxed; 1 <= K <= D).
	K int
	// NormP is the Lp norm of the relaxation: 1, 2 or LInf
	// (ProtocolDeltaRelaxed, ProtocolAsync in ModeRelaxed). 0 means 2.
	NormP float64
	// Rounds is the round budget of the multi-round protocols
	// (ProtocolIterative, ProtocolAsync, ProtocolK1Async).
	Rounds int
	// Directions is the support-fan size of ProtocolConvex (0 = 2*D).
	Directions int
	// Mode selects the async round-0 choice (ProtocolAsync): ModeRelaxed
	// (default) or ModeExact.
	Mode AsyncMode

	// Byzantine scripts oral-broadcast adversaries of the synchronous
	// protocols (ids -> behavior; len <= F).
	Byzantine map[int]ByzantineBehavior
	// SignedBroadcast switches synchronous Step 1 to Dolev-Strong signed
	// broadcast (tolerates any f < n); ByzantineSigned scripts its
	// adversaries and SigSeed seeds the simulated PKI.
	SignedBroadcast bool
	ByzantineSigned map[int]SignedByzantineBehavior
	SigSeed         int64
	// AsyncByzantine scripts adversaries of the asynchronous protocols.
	AsyncByzantine map[int]*AsyncByzantine
	// IterByzantine scripts adversaries of the iterative protocol.
	IterByzantine map[int]IterByzantine
	// ACSByzantine scripts adversaries of the ACS stream (ids ->
	// behavior; len <= F).
	ACSByzantine map[int]ACSBehavior

	// Proposals drives ProtocolACS: Proposals[e][i] is process i's
	// proposal for epoch e; len(Proposals) is the stream length. Nil
	// falls back to a single epoch proposing Inputs.
	Proposals [][]Vector

	// Default is the fallback vector when broadcast resolves to garbage
	// (zero vector of dimension D if nil; synchronous protocols).
	Default Vector
	// Schedule controls asynchronous delivery order (FIFO if nil).
	Schedule Schedule
	// Faults injects seeded link faults (drops, delays, duplication,
	// partitions) into the network substrate; nil injects nothing. Runs
	// are replayable: the same Spec (including Faults.Seed) reproduces the
	// same fault pattern, outputs and transcripts. Fault patterns that
	// break the protocol's delivery model return errors wrapping
	// ErrDeliveryViolated instead of producing unguaranteed outputs.
	Faults *LinkFaults
	// Trace observes every delivered message (hook a TraceRecorder here).
	Trace func(Message)
}

// Result is the unified outcome of Run. Fields not produced by the
// executed protocol are left at their zero values.
type Result struct {
	// Protocol echoes the protocol that ran.
	Protocol Protocol
	// Outputs[i] is process i's decision (nil for async processes that
	// never decided; unset for ProtocolConvex).
	Outputs []Vector
	// Delta[i] is the relaxation radius process i achieved
	// (ProtocolDeltaRelaxed and relaxed-mode async runs).
	Delta []float64
	// AgreedSet[i] is the Step-1 multiset of process i (synchronous
	// single-shot protocols).
	AgreedSet []*PointSet
	// Vertices[i] is process i's agreed polytope (ProtocolConvex).
	Vertices [][]Vector
	// RoundSpread traces the per-round honest value spread
	// (ProtocolAsync).
	RoundSpread []float64
	// RangeHistory traces the honest estimate range per round
	// (ProtocolIterative).
	RangeHistory []float64
	// ACS[i] is process i's sealed epoch-decision sequence
	// (ProtocolACS; nil for processes another node executed, as on the
	// TCP backend). Outputs[i] and Delta[i] mirror the last epoch's
	// decision so the generic tooling sees a point decision too.
	ACS [][]ACSEpoch
	// Rounds, Steps and Messages are network statistics (whichever apply).
	Rounds, Steps, Messages int
	// Metrics is the per-run observability snapshot: protocol name, wall
	// time, round/step/message counts, Byzantine message drops and EIG
	// tree size (where the protocol produces them).
	Metrics *RunMetrics
}

// HonestIDs returns the process ids with no scripted adversary in any
// of the Spec's adversary maps, in ascending order.
func (s *Spec) HonestIDs() []int {
	var ids []int
	for i := 0; i < s.N; i++ {
		_, badOM := s.Byzantine[i]
		_, badDS := s.ByzantineSigned[i]
		_, badAsync := s.AsyncByzantine[i]
		_, badIter := s.IterByzantine[i]
		_, badACS := s.ACSByzantine[i]
		if !badOM && !badDS && !badAsync && !badIter && !badACS {
			ids = append(ids, i)
		}
	}
	return ids
}

// NonFaultyInputs returns the multiset of inputs held by honest
// processes — the S of the paper's delta*(S) and validity conditions.
func (s *Spec) NonFaultyInputs() *PointSet {
	set := NewPointSet()
	for _, i := range s.HonestIDs() {
		set.Append(s.Inputs[i])
	}
	return set
}

// syncConfig assembles the internal synchronous config from a Spec.
func (s *Spec) syncConfig() *consensus.SyncConfig {
	return &consensus.SyncConfig{
		N: s.N, F: s.F, D: s.D,
		Inputs:          s.Inputs,
		Byzantine:       s.Byzantine,
		SignedBroadcast: s.SignedBroadcast,
		ByzantineSigned: s.ByzantineSigned,
		SigSeed:         s.SigSeed,
		Default:         s.Default,
		Faults:          s.Faults,
		Trace:           s.Trace,
	}
}

// asyncConfig assembles the internal asynchronous config from a Spec.
func (s *Spec) asyncConfig() *consensus.AsyncConfig {
	return &consensus.AsyncConfig{
		N: s.N, F: s.F, D: s.D,
		Inputs:    s.Inputs,
		Rounds:    s.Rounds,
		Mode:      s.Mode,
		NormP:     s.NormP,
		Byzantine: s.AsyncByzantine,
		Schedule:  s.Schedule,
		Faults:    s.Faults,
		Trace:     s.Trace,
	}
}

// norm returns the Spec's relaxation norm, defaulting to 2.
func (s *Spec) norm() float64 {
	if s.NormP == 0 {
		return 2
	}
	return s.NormP
}

// Run executes the consensus instance described by spec. It honors ctx:
// cancellation or deadline expiry aborts the run between protocol steps
// with an error matching both ErrCanceled and the context's own error.
// All failures wrap the package's typed sentinels (errors.Is-matchable).
//
// Options customize the execution without changing the instance: the
// message-plane backend (WithTransport — deterministic simulation by
// default, in-process mesh or real TCP otherwise), a per-run metrics
// callback (WithMetricsSink) and a run-scoped kernel worker budget
// (WithKernelWorkers). Bare Run(ctx, spec) behaves exactly as before
// options existed.
func Run(ctx context.Context, spec Spec, opts ...Option) (*Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.setWorkers {
		prev := par.KernelWorkersSetting()
		par.SetKernelWorkers(o.kernelWorkers)
		defer par.SetKernelWorkers(prev)
	}
	start := time.Now()
	var res *Result
	var err error
	switch o.transport.Kind {
	case TransportSim:
		res, err = runSim(ctx, &spec)
	case TransportMesh:
		res, err = runMesh(ctx, &spec)
	case TransportTCP:
		res, err = runTCP(ctx, &spec, &o.transport)
	default:
		err = fmt.Errorf("%w: transport kind %d", ErrUnsupportedTransport, int(o.transport.Kind))
	}
	if err != nil {
		return nil, err
	}
	if res.Metrics == nil {
		res.Metrics = &RunMetrics{}
	}
	res.Metrics.Protocol = spec.Protocol.String()
	res.Metrics.Transport = o.transport.Kind.String()
	res.Metrics.WallNanos = time.Since(start).Nanoseconds()
	res.Metrics.Rounds = res.Rounds
	res.Metrics.Steps = res.Steps
	res.Metrics.Messages = res.Messages
	if res.Metrics.Rounds == 0 && len(res.RangeHistory) > 0 {
		// Iterative runs report rounds only through the range history.
		res.Metrics.Rounds = len(res.RangeHistory) - 1
	}
	if o.sink != nil {
		o.sink(res.Metrics)
	}
	return res, nil
}

// runSim executes spec on the default deterministic simulation backend.
func runSim(ctx context.Context, spec *Spec) (*Result, error) {
	res := &Result{Protocol: spec.Protocol}
	switch spec.Protocol {
	case ProtocolDeltaRelaxed:
		sr, err := consensus.RunDeltaRelaxedBVC(ctx, spec.syncConfig(), spec.norm())
		if err != nil {
			return nil, err
		}
		fromSync(res, sr)
	case ProtocolExact:
		sr, err := consensus.RunExactBVC(ctx, spec.syncConfig())
		if err != nil {
			return nil, err
		}
		fromSync(res, sr)
	case ProtocolKRelaxed:
		sr, err := consensus.RunKRelaxedBVC(ctx, spec.syncConfig(), spec.K)
		if err != nil {
			return nil, err
		}
		fromSync(res, sr)
	case ProtocolScalar:
		sr, err := consensus.RunScalarConsensus(ctx, spec.syncConfig())
		if err != nil {
			return nil, err
		}
		fromSync(res, sr)
	case ProtocolConvex:
		cr, err := consensus.RunConvexHullConsensus(ctx, spec.syncConfig(), spec.Directions)
		if err != nil {
			return nil, err
		}
		res.Vertices = cr.Vertices
		res.Rounds = cr.Rounds
		res.Messages = cr.Messages
		res.Metrics = &RunMetrics{}
		fillFaultMetrics(res.Metrics, cr.Faults)
	case ProtocolIterative:
		ir, err := consensus.RunIterativeBVC(ctx, &consensus.IterConfig{
			N: spec.N, F: spec.F, D: spec.D,
			Inputs:    spec.Inputs,
			Rounds:    spec.Rounds,
			Byzantine: spec.IterByzantine,
			Faults:    spec.Faults,
			Trace:     spec.Trace,
		})
		if err != nil {
			return nil, err
		}
		res.Outputs = ir.Outputs
		res.RangeHistory = ir.RangeHistory
		res.Messages = ir.Messages
		res.Metrics = &RunMetrics{}
		fillFaultMetrics(res.Metrics, ir.Faults)
	case ProtocolAsync:
		ar, err := consensus.RunAsyncBVC(ctx, spec.asyncConfig())
		if err != nil {
			return nil, err
		}
		fromAsync(res, ar)
	case ProtocolK1Async:
		ar, err := consensus.RunK1AsyncBVC(ctx, spec.asyncConfig())
		if err != nil {
			return nil, err
		}
		fromAsync(res, ar)
	case ProtocolACS:
		return runSimACS(ctx, spec)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownProtocol, int(spec.Protocol))
	}
	return res, nil
}

func fromSync(res *Result, sr *SyncResult) {
	res.Outputs = sr.Outputs
	res.Delta = sr.Delta
	res.AgreedSet = sr.AgreedSet
	res.Rounds = sr.Rounds
	res.Messages = sr.Messages
	res.Metrics = &RunMetrics{ByzantineDrops: sr.Drops, EIGTreeNodes: sr.TreeNodes}
	fillFaultMetrics(res.Metrics, sr.Faults)
}

func fromAsync(res *Result, ar *AsyncResult) {
	res.Outputs = ar.Outputs
	res.Delta = ar.Delta
	res.RoundSpread = ar.RoundSpread
	res.Steps = ar.Steps
	res.Messages = ar.Messages
	res.Metrics = &RunMetrics{}
	fillFaultMetrics(res.Metrics, ar.Faults)
}

func fillFaultMetrics(m *RunMetrics, fs sched.FaultStats) {
	m.LinkDrops = fs.Dropped
	m.LinkDuplicates = fs.Duplicated
	m.LinkDelays = fs.Delayed
	m.Retransmits = fs.Retransmits
	m.PartitionHeals = fs.PartitionHeals
}

// ComputeDeltaStar returns delta*_p(S) — the smallest delta for which
// Gamma_(delta,p)(S) is non-empty — with an attaining point. It is the
// error-returning replacement for the deprecated DeltaStar, which panics
// on invalid arguments. p = 1 and p = LInf are exact LPs; p = 2 uses the
// Lemma 13 closed form or the L2 minimax solver; any other p > 1 uses the
// generic iterative Lp minimax solver and returns a tight upper bound.
func ComputeDeltaStar(s *PointSet, f int, p float64) (float64, Vector, error) {
	if s == nil || s.Len() == 0 {
		return 0, nil, fmt.Errorf("%w: empty point set", ErrBadInputs)
	}
	if f < 1 || f >= s.Len() {
		return 0, nil, fmt.Errorf("%w: need 1 <= f < |S|, got f=%d with |S|=%d", ErrTooManyFaults, f, s.Len())
	}
	switch {
	case p == 2:
		r := minimax.DeltaStar2(s, f)
		return r.Delta, r.Point, nil
	case p == 1 || p == LInf:
		delta, pt := relax.DeltaStarPoly(s, f, p)
		return delta, pt, nil
	case p > 1:
		r := minimax.DeltaStarP(s, f, p)
		return r.Delta, r.Point, nil
	}
	return 0, nil, fmt.Errorf("%w: p=%v (need p >= 1)", ErrBadNorm, p)
}

// CacheCounters reports one kernel cache's hit/miss statistics.
// Overflow counts inserts attempted against a full cache (capacity
// pressure) and Evictions the entries displaced by the second-chance
// policy to admit them.
type CacheCounters struct {
	Hits, Misses        int64
	Overflow, Evictions int64
	Entries, Capacity   int
}

// HitRate returns hits/(hits+misses), or 0 before any lookups.
func (c CacheCounters) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// KernelCacheStats aggregates the per-package geometry-kernel caches.
type KernelCacheStats struct {
	// Geometry covers the hull predicates (InHull, DistP in every norm).
	Geometry CacheCounters
	// Relax covers the Gamma/DeltaStarPoly intersection solvers.
	Relax CacheCounters
	// Minimax covers the DeltaStar2 minimax solver.
	Minimax CacheCounters
}

// Totals returns the combined counters of all kernel caches.
func (k KernelCacheStats) Totals() CacheCounters {
	return CacheCounters{
		Hits:      k.Geometry.Hits + k.Relax.Hits + k.Minimax.Hits,
		Misses:    k.Geometry.Misses + k.Relax.Misses + k.Minimax.Misses,
		Overflow:  k.Geometry.Overflow + k.Relax.Overflow + k.Minimax.Overflow,
		Evictions: k.Geometry.Evictions + k.Relax.Evictions + k.Minimax.Evictions,
		Entries:   k.Geometry.Entries + k.Relax.Entries + k.Minimax.Entries,
		Capacity:  k.Geometry.Capacity + k.Relax.Capacity + k.Minimax.Capacity,
	}
}

// SetKernelWorkers sets the worker budget used inside the combinatorial
// geometry kernels: the Tverberg partition scan, the H_k projection
// sweeps, and the delta* minimax probes. 0 (the default) means
// GOMAXPROCS; 1 forces fully sequential kernels. Kernel results are
// bit-identical for every setting — the parallel scans use
// lowest-index-wins first-hit semantics and index-ordered reductions —
// so this only trades wall-clock for cores.
func SetKernelWorkers(w int) { par.SetKernelWorkers(w) }

// KernelWorkers reports the current kernel worker budget with the 0
// default resolved to GOMAXPROCS.
func KernelWorkers() int { return par.KernelWorkers() }

// SetCaching enables or disables every geometry-kernel memo cache. The
// caches are on by default; they never change results (keys are exact
// binary encodings of the inputs, hits are bit-for-bit replays), only
// speed. Disable them to benchmark the raw solvers.
func SetCaching(on bool) {
	geom.SetCaching(on)
	relax.SetCaching(on)
	minimax.SetCaching(on)
}

// CacheStats reports the current kernel cache statistics.
func CacheStats() KernelCacheStats {
	g, r, m := geom.CacheStats(), relax.CacheStats(), minimax.CacheStats()
	conv := func(s memo.Stats) CacheCounters {
		return CacheCounters{
			Hits: s.Hits, Misses: s.Misses,
			Overflow: s.Overflow, Evictions: s.Evictions,
			Entries: s.Entries, Capacity: s.Capacity,
		}
	}
	return KernelCacheStats{Geometry: conv(g), Relax: conv(r), Minimax: conv(m)}
}

// ResetCaches drops all cached kernel results and zeroes the counters.
func ResetCaches() {
	geom.ResetCache()
	relax.ResetCache()
	minimax.ResetCache()
}
