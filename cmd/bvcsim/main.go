// Command bvcsim runs a single Byzantine vector consensus instance on the
// simulated network and prints the transcript summary: per-process
// outputs, the achieved relaxation radius delta, and the agreement and
// validity verdicts.
//
// Usage examples:
//
//	bvcsim -mode algo  -n 4 -f 1 -d 3 -p 2 -adversary equivocate
//	bvcsim -mode exact -n 5 -f 1 -d 3 -adversary silent
//	bvcsim -mode k     -n 5 -f 1 -d 3 -k 2
//	bvcsim -mode async -n 4 -f 1 -d 3 -rounds 10 -adversary lie
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/trace"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/viz"
	"relaxedbvc/internal/workload"
)

func main() {
	var (
		mode    = flag.String("mode", "algo", "algo | exact | k | scalar | convex | iterative | async | async-exact")
		n       = flag.Int("n", 4, "number of processes")
		f       = flag.Int("f", 1, "max Byzantine processes")
		d       = flag.Int("d", 3, "input dimension")
		k       = flag.Int("k", 2, "projection size for -mode k")
		p       = flag.Float64("p", 2, "Lp norm for -mode algo (1, 2, or 0 meaning inf)")
		rounds  = flag.Int("rounds", 10, "averaging rounds for async modes")
		seed    = flag.Int64("seed", 1, "random seed for inputs and schedules")
		adv     = flag.String("adversary", "equivocate", "none | silent | equivocate | fixed | random")
		wl      = flag.String("workload", "gauss", "input family: cube | gauss | sphere | cluster")
		verbose = flag.Bool("v", false, "print the agreed multiset")
		doTrace = flag.Bool("trace", false, "print a message-trace summary and the first events")
		svgOut  = flag.String("svg", "", "write a picture of the run to this file (2-D sync modes only)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	gen, ok := workload.Generators()[*wl]
	if !ok {
		fatalf("unknown workload %q", *wl)
	}
	inputs := gen(rng, *n, *d)
	norm := *p
	if norm == 0 {
		norm = math.Inf(1)
	}

	fmt.Printf("relaxed byzantine vector consensus simulator\n")
	fmt.Printf("mode=%s n=%d f=%d d=%d adversary=%s workload=%s seed=%d\n\n", *mode, *n, *f, *d, *adv, *wl, *seed)
	for i, in := range inputs {
		fmt.Printf("  input %d: %v\n", i, in)
	}
	fmt.Println()

	var rec *trace.Recorder
	if *doTrace {
		rec = trace.New(1 << 16)
	}

	switch *mode {
	case "algo", "exact", "k", "scalar":
		runSync(*mode, *n, *f, *d, *k, norm, *adv, *seed, inputs, *verbose, rec, *svgOut)
	case "convex":
		runConvex(*n, *f, *d, *adv, *seed, inputs)
	case "iterative":
		runIterative(*n, *f, *d, *rounds, *adv, *seed, inputs)
	case "async", "async-exact":
		runAsync(*mode, *n, *f, *d, *rounds, *adv, *seed, inputs, rec)
	default:
		fatalf("unknown mode %q", *mode)
	}

	if rec != nil {
		fmt.Println()
		rec.Summary(os.Stdout)
		fmt.Println("first events:")
		rec.Dump(os.Stdout, 12)
	}
}

func runConvex(n, f, d int, adv string, seed int64, inputs []vec.V) {
	rng := rand.New(rand.NewSource(seed + 100))
	cfg := &consensus.SyncConfig{N: n, F: f, D: d, Inputs: inputs}
	if b := syncAdversary(adv, d, seed, rng); b != nil {
		cfg.Byzantine = map[int]broadcast.EIGBehavior{n - 1: b}
	}
	res, err := consensus.RunConvexHullConsensus(cfg, 4*d)
	if err != nil {
		fatalf("run failed: %v", err)
	}
	honest := cfg.HonestIDs()
	fmt.Printf("broadcast: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	fmt.Printf("agreed polytope (%d support points) at process %d:\n", len(res.Vertices[honest[0]]), honest[0])
	for i, v := range res.Vertices[honest[0]] {
		fmt.Printf("  vertex %2d: %v\n", i, v)
	}
	agree := true
	for _, i := range honest[1:] {
		if consensus.PolytopeAgreementError(res, honest[0], i) != 0 {
			agree = false
		}
	}
	fmt.Printf("\npolytope agreement: %v\n", agree)
	fmt.Printf("convex validity:    %v\n",
		consensus.CheckConvexValidity(res.Vertices[honest[0]], cfg.NonFaultyInputs(), 1e-6))
}

func runIterative(n, f, d, rounds int, adv string, seed int64, inputs []vec.V) {
	cfg := &consensus.IterConfig{N: n, F: f, D: d, Inputs: inputs, Rounds: rounds}
	switch adv {
	case "none":
	case "silent":
		cfg.Byzantine = map[int]consensus.IterByzantine{
			n - 1: consensus.IterByzantineFunc(func(int, int, vec.V) vec.V { return nil }),
		}
	default:
		rng := rand.New(rand.NewSource(seed + 11))
		cfg.Byzantine = map[int]consensus.IterByzantine{
			n - 1: consensus.IterByzantineFunc(func(int, int, vec.V) vec.V {
				v := vec.New(d)
				for i := range v {
					v[i] = rng.NormFloat64() * 50
				}
				return v
			}),
		}
	}
	res, err := consensus.RunIterativeBVC(cfg)
	if err != nil {
		fatalf("run failed: %v", err)
	}
	fmt.Printf("honest range per round:\n")
	for r, v := range res.RangeHistory {
		fmt.Printf("  round %2d: %.6g\n", r, v)
	}
	fmt.Printf("\nfinal estimates:\n")
	for i := 0; i < n; i++ {
		if _, bad := cfg.Byzantine[i]; bad {
			continue
		}
		fmt.Printf("  process %d: %v\n", i, res.Outputs[i])
	}
	fmt.Printf("\nmessages delivered: %d\n", res.Messages)
}

func syncAdversary(name string, d int, seed int64, rng *rand.Rand) broadcast.EIGBehavior {
	switch name {
	case "none":
		return nil
	case "silent":
		return adversary.Silent()
	case "equivocate":
		return adversary.Equivocator(
			workload.Gaussian(rng, 1, d, 10)[0],
			workload.Gaussian(rng, 1, d, 10)[0])
	case "fixed":
		return adversary.FixedVector(workload.Gaussian(rng, 1, d, 10)[0])
	case "random":
		return adversary.RandomLiar(seed, d, 10)
	}
	fatalf("unknown adversary %q", name)
	return nil
}

func runSync(mode string, n, f, d, k int, p float64, adv string, seed int64, inputs []vec.V, verbose bool, rec *trace.Recorder, svgOut string) {
	rng := rand.New(rand.NewSource(seed + 100))
	cfg := &consensus.SyncConfig{N: n, F: f, D: d, Inputs: inputs}
	if rec != nil {
		cfg.Trace = rec.Hook()
	}
	if b := syncAdversary(adv, d, seed, rng); b != nil {
		cfg.Byzantine = map[int]broadcast.EIGBehavior{n - 1: b}
	}
	var (
		res *consensus.SyncResult
		err error
	)
	switch mode {
	case "algo":
		res, err = consensus.RunDeltaRelaxedBVC(cfg, p)
	case "exact":
		res, err = consensus.RunExactBVC(cfg)
	case "k":
		res, err = consensus.RunKRelaxedBVC(cfg, k)
	case "scalar":
		if d != 1 {
			fatalf("-mode scalar requires -d 1")
		}
		res, err = consensus.RunScalarConsensus(cfg)
	}
	if err != nil {
		fatalf("run failed: %v", err)
	}
	honest := cfg.HonestIDs()
	nonFaulty := cfg.NonFaultyInputs()
	fmt.Printf("broadcast: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	if verbose {
		fmt.Printf("agreed multiset at process %d:\n", honest[0])
		for c := 0; c < n; c++ {
			fmt.Printf("  from %d: %v\n", c, res.AgreedSet[honest[0]].At(c))
		}
		fmt.Println()
	}
	for _, i := range honest {
		fmt.Printf("  process %d output: %v", i, res.Outputs[i])
		if mode == "algo" {
			fmt.Printf("   (delta = %.6g)", res.Delta[i])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("agreement error (Linf): %.3g\n", consensus.AgreementError(res.Outputs, honest))
	out := res.Outputs[honest[0]]
	switch mode {
	case "exact", "scalar":
		fmt.Printf("exact validity: %v\n", consensus.CheckExactValidity(out, nonFaulty, 1e-6))
	case "k":
		fmt.Printf("%d-relaxed validity: %v\n", k, consensus.CheckKValidity(out, nonFaulty, k, 1e-6))
	case "algo":
		delta := res.Delta[honest[0]]
		dist, _ := geom.DistP(out, nonFaulty, p)
		fmt.Printf("(delta,p)-relaxed validity: %v (distance %.6g <= delta %.6g)\n",
			consensus.CheckDeltaValidity(out, nonFaulty, delta, p, 1e-6), dist, delta)
	}
	if svgOut != "" {
		if d != 2 {
			fmt.Println("\n-svg requires -d 2; skipping picture")
			return
		}
		var byzClaims []vec.V
		for id := range cfg.Byzantine {
			byzClaims = append(byzClaims, res.AgreedSet[honest[0]].At(id))
		}
		cs := viz.ConsensusScene{
			HonestInputs: nonFaulty.Points(),
			ByzInputs:    byzClaims,
			Output:       out,
			Title:        fmt.Sprintf("%s n=%d f=%d", mode, n, f),
		}
		if mode == "algo" {
			cs.Delta = res.Delta[honest[0]]
		}
		fh, err := os.Create(svgOut)
		if err != nil {
			fatalf("svg: %v", err)
		}
		defer fh.Close()
		if err := viz.RenderConsensus(fh, cs, 520, 520); err != nil {
			fatalf("svg: %v", err)
		}
		fmt.Printf("\nwrote %s\n", svgOut)
	}
}

func runAsync(mode string, n, f, d, rounds int, adv string, seed int64, inputs []vec.V, rec *trace.Recorder) {
	cfg := &consensus.AsyncConfig{
		N: n, F: f, D: d, Inputs: inputs, Rounds: rounds,
		Mode:     consensus.ModeRelaxed,
		Schedule: &sched.RandomSchedule{Rng: rand.New(rand.NewSource(seed + 7))},
	}
	if rec != nil {
		cfg.Trace = rec.Hook()
	}
	if mode == "async-exact" {
		cfg.Mode = consensus.ModeExact
	}
	switch adv {
	case "none":
	case "silent":
		cfg.Byzantine = map[int]*consensus.AsyncByzantine{n - 1: {SilentFrom: 0, CorruptFrom: consensus.NeverMisbehave}}
	case "lie", "equivocate", "fixed", "random":
		rng := rand.New(rand.NewSource(seed + 9))
		cfg.Byzantine = map[int]*consensus.AsyncByzantine{n - 1: {
			Input:       workload.Gaussian(rng, 1, d, 8)[0],
			SilentFrom:  consensus.NeverMisbehave,
			CorruptFrom: consensus.NeverMisbehave,
		}}
	default:
		fatalf("unknown adversary %q", adv)
	}
	res, err := consensus.RunAsyncBVC(cfg)
	if err != nil {
		fatalf("run failed: %v", err)
	}
	honest := cfg.HonestIDs()
	fmt.Printf("delivered %d messages in %d steps\n\n", res.Messages, res.Steps)
	for _, i := range honest {
		fmt.Printf("  process %d output: %v", i, res.Outputs[i])
		if cfg.Mode == consensus.ModeRelaxed {
			fmt.Printf("   (round-0 delta = %.6g)", res.Delta[i])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("epsilon-agreement after %d rounds: %.3g\n", rounds, consensus.AgreementError(res.Outputs, honest))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bvcsim: "+format+"\n", args...)
	os.Exit(1)
}
