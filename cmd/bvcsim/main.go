// Command bvcsim runs a single Byzantine vector consensus instance on the
// simulated network and prints the transcript summary: per-process
// outputs, the achieved relaxation radius delta, and the agreement and
// validity verdicts. It is a thin shell over the library's unified
// Run(ctx, spec) entry point.
//
// Usage examples:
//
//	bvcsim -mode algo  -n 4 -f 1 -d 3 -p 2 -adversary equivocate
//	bvcsim -mode exact -n 5 -f 1 -d 3 -adversary silent
//	bvcsim -mode k     -n 5 -f 1 -d 3 -k 2
//	bvcsim -mode async -n 4 -f 1 -d 3 -rounds 10 -adversary lie
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	bvc "relaxedbvc"
	"relaxedbvc/internal/viz"
	"relaxedbvc/internal/workload"
)

func main() {
	var (
		mode    = flag.String("mode", "algo", "algo | exact | k | scalar | convex | iterative | async | async-exact")
		n       = flag.Int("n", 4, "number of processes")
		f       = flag.Int("f", 1, "max Byzantine processes")
		d       = flag.Int("d", 3, "input dimension")
		k       = flag.Int("k", 2, "projection size for -mode k")
		p       = flag.Float64("p", 2, "Lp norm for -mode algo (1, 2, or 0 meaning inf)")
		rounds  = flag.Int("rounds", 10, "averaging rounds for async modes")
		seed    = flag.Int64("seed", 1, "random seed for inputs and schedules")
		adv     = flag.String("adversary", "equivocate", "none | silent | equivocate | fixed | random")
		wl      = flag.String("workload", "gauss", "input family: cube | gauss | sphere | cluster")
		verbose = flag.Bool("v", false, "print the agreed multiset")
		doTrace = flag.Bool("trace", false, "print a message-trace summary and the first events")
		svgOut  = flag.String("svg", "", "write a picture of the run to this file (2-D sync modes only)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	gen, ok := workload.Generators()[*wl]
	if !ok {
		fatalf("unknown workload %q", *wl)
	}
	inputs := gen(rng, *n, *d)
	norm := *p
	if norm == 0 {
		norm = math.Inf(1)
	}

	fmt.Printf("relaxed byzantine vector consensus simulator\n")
	fmt.Printf("mode=%s n=%d f=%d d=%d adversary=%s workload=%s seed=%d\n\n", *mode, *n, *f, *d, *adv, *wl, *seed)
	for i, in := range inputs {
		fmt.Printf("  input %d: %v\n", i, in)
	}
	fmt.Println()

	var rec *bvc.TraceRecorder
	if *doTrace {
		rec = bvc.NewTraceRecorder(1 << 16)
	}

	// Assemble the Spec for the chosen mode.
	spec := bvc.Spec{N: *n, F: *f, D: *d, Inputs: inputs}
	if rec != nil {
		spec.Trace = rec.Hook()
	}
	switch *mode {
	case "algo":
		spec.Protocol = bvc.ProtocolDeltaRelaxed
		spec.NormP = norm
	case "exact":
		spec.Protocol = bvc.ProtocolExact
	case "k":
		spec.Protocol = bvc.ProtocolKRelaxed
		spec.K = *k
	case "scalar":
		if *d != 1 {
			fatalf("-mode scalar requires -d 1")
		}
		spec.Protocol = bvc.ProtocolScalar
	case "convex":
		spec.Protocol = bvc.ProtocolConvex
		spec.Directions = 4 * *d
	case "iterative":
		spec.Protocol = bvc.ProtocolIterative
		spec.Rounds = *rounds
	case "async", "async-exact":
		spec.Protocol = bvc.ProtocolAsync
		spec.Rounds = *rounds
		spec.Mode = bvc.ModeRelaxed
		if *mode == "async-exact" {
			spec.Mode = bvc.ModeExact
		}
		spec.Schedule = bvc.RandomSchedule(*seed + 7)
	default:
		fatalf("unknown mode %q", *mode)
	}
	installAdversary(&spec, *mode, *adv, *seed)

	res, err := bvc.Run(context.Background(), spec)
	if err != nil {
		fatalf("run failed: %v", err)
	}

	honest := honestIDs(&spec)
	nonFaulty := nonFaultyInputs(&spec, honest)
	switch *mode {
	case "algo", "exact", "k", "scalar":
		printSync(&spec, res, *mode, *k, norm, *verbose, *svgOut)
	case "convex":
		printConvex(res, honest, nonFaulty)
	case "iterative":
		printIterative(&spec, res)
	case "async", "async-exact":
		printAsync(&spec, res, honest, *rounds)
	}

	if rec != nil {
		fmt.Println()
		rec.Summary(os.Stdout)
		fmt.Println("first events:")
		rec.Dump(os.Stdout, 12)
	}
}

// installAdversary scripts process n-1 with the named behavior in
// whichever Byzantine field the mode consults.
func installAdversary(spec *bvc.Spec, mode, adv string, seed int64) {
	bad := spec.N - 1
	rng := rand.New(rand.NewSource(seed + 100))
	switch mode {
	case "algo", "exact", "k", "scalar", "convex":
		var b bvc.ByzantineBehavior
		switch adv {
		case "none":
			return
		case "silent":
			b = bvc.Silent()
		case "equivocate":
			b = bvc.Equivocator(
				workload.Gaussian(rng, 1, spec.D, 10)[0],
				workload.Gaussian(rng, 1, spec.D, 10)[0])
		case "fixed":
			b = bvc.FixedVector(workload.Gaussian(rng, 1, spec.D, 10)[0])
		case "random":
			b = bvc.RandomLiar(seed, spec.D, 10)
		default:
			fatalf("unknown adversary %q", adv)
		}
		spec.Byzantine = map[int]bvc.ByzantineBehavior{bad: b}
	case "iterative":
		switch adv {
		case "none":
			return
		case "silent":
			spec.IterByzantine = map[int]bvc.IterByzantine{
				bad: bvc.IterByzantineFunc(func(int, int, bvc.Vector) bvc.Vector { return nil }),
			}
		default:
			lrng := rand.New(rand.NewSource(seed + 11))
			d := spec.D
			spec.IterByzantine = map[int]bvc.IterByzantine{
				bad: bvc.IterByzantineFunc(func(int, int, bvc.Vector) bvc.Vector {
					v := make([]float64, d)
					for i := range v {
						v[i] = lrng.NormFloat64() * 50
					}
					return bvc.NewVector(v...)
				}),
			}
		}
	case "async", "async-exact":
		switch adv {
		case "none":
		case "silent":
			spec.AsyncByzantine = map[int]*bvc.AsyncByzantine{
				bad: {SilentFrom: 0, CorruptFrom: bvc.NeverMisbehave},
			}
		case "lie", "equivocate", "fixed", "random":
			arng := rand.New(rand.NewSource(seed + 9))
			spec.AsyncByzantine = map[int]*bvc.AsyncByzantine{
				bad: {
					Input:       workload.Gaussian(arng, 1, spec.D, 8)[0],
					SilentFrom:  bvc.NeverMisbehave,
					CorruptFrom: bvc.NeverMisbehave,
				},
			}
		default:
			fatalf("unknown adversary %q", adv)
		}
	}
}

// honestIDs returns the process ids with no scripted behavior.
func honestIDs(spec *bvc.Spec) []int {
	var ids []int
	for i := 0; i < spec.N; i++ {
		_, a := spec.Byzantine[i]
		_, b := spec.AsyncByzantine[i]
		_, c := spec.IterByzantine[i]
		if !a && !b && !c {
			ids = append(ids, i)
		}
	}
	return ids
}

func nonFaultyInputs(spec *bvc.Spec, honest []int) *bvc.PointSet {
	pts := make([]bvc.Vector, len(honest))
	for j, i := range honest {
		pts[j] = spec.Inputs[i]
	}
	return bvc.NewPointSet(pts...)
}

func printSync(spec *bvc.Spec, res *bvc.Result, mode string, k int, p float64, verbose bool, svgOut string) {
	honest := honestIDs(spec)
	nonFaulty := nonFaultyInputs(spec, honest)
	fmt.Printf("broadcast: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	if verbose {
		fmt.Printf("agreed multiset at process %d:\n", honest[0])
		for c := 0; c < spec.N; c++ {
			fmt.Printf("  from %d: %v\n", c, res.AgreedSet[honest[0]].At(c))
		}
		fmt.Println()
	}
	for _, i := range honest {
		fmt.Printf("  process %d output: %v", i, res.Outputs[i])
		if mode == "algo" {
			fmt.Printf("   (delta = %.6g)", res.Delta[i])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("agreement error (Linf): %.3g\n", bvc.AgreementError(res.Outputs, honest))
	out := res.Outputs[honest[0]]
	switch mode {
	case "exact", "scalar":
		fmt.Printf("exact validity: %v\n", bvc.CheckExactValidity(out, nonFaulty, 1e-6))
	case "k":
		fmt.Printf("%d-relaxed validity: %v\n", k, bvc.CheckKValidity(out, nonFaulty, k, 1e-6))
	case "algo":
		delta := res.Delta[honest[0]]
		dist, _ := bvc.DistToHull(out, nonFaulty, p)
		fmt.Printf("(delta,p)-relaxed validity: %v (distance %.6g <= delta %.6g)\n",
			bvc.CheckDeltaValidity(out, nonFaulty, delta, p, 1e-6), dist, delta)
	}
	if svgOut != "" {
		if spec.D != 2 {
			fmt.Println("\n-svg requires -d 2; skipping picture")
			return
		}
		var byzClaims []bvc.Vector
		for id := range spec.Byzantine {
			byzClaims = append(byzClaims, res.AgreedSet[honest[0]].At(id))
		}
		cs := viz.ConsensusScene{
			HonestInputs: nonFaulty.Points(),
			ByzInputs:    byzClaims,
			Output:       out,
			Title:        fmt.Sprintf("%s n=%d f=%d", mode, spec.N, spec.F),
		}
		if mode == "algo" {
			cs.Delta = res.Delta[honest[0]]
		}
		fh, err := os.Create(svgOut)
		if err != nil {
			fatalf("svg: %v", err)
		}
		defer fh.Close()
		if err := viz.RenderConsensus(fh, cs, 520, 520); err != nil {
			fatalf("svg: %v", err)
		}
		fmt.Printf("\nwrote %s\n", svgOut)
	}
}

func printConvex(res *bvc.Result, honest []int, nonFaulty *bvc.PointSet) {
	fmt.Printf("broadcast: %d rounds, %d messages\n\n", res.Rounds, res.Messages)
	fmt.Printf("agreed polytope (%d support points) at process %d:\n", len(res.Vertices[honest[0]]), honest[0])
	for i, v := range res.Vertices[honest[0]] {
		fmt.Printf("  vertex %2d: %v\n", i, v)
	}
	agree := true
	base := res.Vertices[honest[0]]
	for _, i := range honest[1:] {
		other := res.Vertices[i]
		if len(other) != len(base) {
			agree = false
			continue
		}
		for v := range base {
			for c := range base[v] {
				if base[v][c] != other[v][c] {
					agree = false
				}
			}
		}
	}
	fmt.Printf("\npolytope agreement: %v\n", agree)
	fmt.Printf("convex validity:    %v\n", bvc.CheckConvexValidity(base, nonFaulty, 1e-6))
}

func printIterative(spec *bvc.Spec, res *bvc.Result) {
	fmt.Printf("honest range per round:\n")
	for r, v := range res.RangeHistory {
		fmt.Printf("  round %2d: %.6g\n", r, v)
	}
	fmt.Printf("\nfinal estimates:\n")
	for i := 0; i < spec.N; i++ {
		if _, bad := spec.IterByzantine[i]; bad {
			continue
		}
		fmt.Printf("  process %d: %v\n", i, res.Outputs[i])
	}
	fmt.Printf("\nmessages delivered: %d\n", res.Messages)
}

func printAsync(spec *bvc.Spec, res *bvc.Result, honest []int, rounds int) {
	fmt.Printf("delivered %d messages in %d steps\n\n", res.Messages, res.Steps)
	for _, i := range honest {
		fmt.Printf("  process %d output: %v", i, res.Outputs[i])
		if spec.Mode == bvc.ModeRelaxed {
			fmt.Printf("   (round-0 delta = %.6g)", res.Delta[i])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("epsilon-agreement after %d rounds: %.3g\n", rounds, bvc.AgreementError(res.Outputs, honest))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bvcsim: "+format+"\n", args...)
	os.Exit(1)
}
