// Package lintme carries planted bvclint violations for the driver's
// exit-code and -json table tests. It lives under testdata so `go
// build ./...` and `go test ./...` never touch it; the driver loads it
// by explicit path.
package lintme

import "math/rand"

// Pick takes a seed but draws from the global math/rand source — the
// seedflow finding the driver tests count on.
func Pick(seed int64, n int) int {
	_ = seed
	return rand.Intn(n)
}
