// Package clean is a violation-free fixture for the driver's
// exit-code table test.
package clean

// Add is deliberately boring: no analyzer has anything to say here.
func Add(a, b int) int { return a + b }
