package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// moduleRoot is the repo root as seen from this package's test
// working directory (cmd/bvclint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd))
}

// TestRunExitCodes pins the driver's exit-code contract: 0 clean,
// 1 findings, 2 usage/load/internal error.
func TestRunExitCodes(t *testing.T) {
	root := moduleRoot(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, exitClean},
		{"clean package", []string{"-C", root, "-exceptions", "", "./cmd/bvclint/testdata/clean"}, exitClean},
		{"findings", []string{"-C", root, "-exceptions", "", "./cmd/bvclint/testdata/lintme"}, exitFindings},
		{"findings single analyzer", []string{"-C", root, "-exceptions", "", "-only", "seedflow", "./cmd/bvclint/testdata/lintme"}, exitFindings},
		{"other analyzer stays clean", []string{"-C", root, "-exceptions", "", "-only", "floateq", "./cmd/bvclint/testdata/lintme"}, exitClean},
		{"unknown analyzer", []string{"-only", "nosuchanalyzer"}, exitError},
		{"bad flag", []string{"-no-such-flag"}, exitError},
		{"bad pattern", []string{"-C", root, "-exceptions", "", "./cmd/bvclint/testdata/nosuchdir"}, exitError},
		{"malformed exceptions file", []string{"-C", root, "-exceptions", "cmd/bvclint/testdata/badexceptions.txt", "./cmd/bvclint/testdata/clean"}, exitError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(c.args, &stdout, &stderr)
			if got != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					c.args, got, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestRunJSON checks the -json output: a JSON array of findings with
// the stable field names CI tooling keys on, and a literal [] when
// clean.
func TestRunJSON(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-exceptions", "", "-json", "./cmd/bvclint/testdata/lintme"}, &stdout, &stderr); got != exitFindings {
		t.Fatalf("run = %d, want %d\nstderr: %s", got, exitFindings, stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json output empty despite findings exit code")
	}
	d := diags[0]
	if d.Analyzer != "seedflow" || d.Line == 0 || !strings.HasSuffix(d.File, "lintme.go") || d.Message == "" {
		t.Fatalf("unexpected JSON diagnostic: %+v", d)
	}

	stdout.Reset()
	if got := run([]string{"-C", root, "-exceptions", "", "-json", "./cmd/bvclint/testdata/clean"}, &stdout, &stderr); got != exitClean {
		t.Fatalf("clean -json run = %d, want %d", got, exitClean)
	}
	if s := strings.TrimSpace(stdout.String()); s != "[]" {
		t.Fatalf("clean -json output = %q, want []", s)
	}
}

// TestProblemMatcherMatchesOutput keeps the GitHub Actions problem
// matcher in lockstep with the text diagnostic format: the regexp in
// .github/bvclint-problem-matcher.json must match real driver output.
func TestProblemMatcherMatchesOutput(t *testing.T) {
	root := moduleRoot(t)
	raw, err := os.ReadFile(filepath.Join(root, ".github", "bvclint-problem-matcher.json"))
	if err != nil {
		t.Fatalf("problem matcher file: %v", err)
	}
	var matcher struct {
		ProblemMatcher []struct {
			Owner   string `json:"owner"`
			Pattern []struct {
				Regexp  string `json:"regexp"`
				File    int    `json:"file"`
				Line    int    `json:"line"`
				Column  int    `json:"column"`
				Message int    `json:"message"`
				Code    int    `json:"code"`
			} `json:"pattern"`
		} `json:"problemMatcher"`
	}
	if err := json.Unmarshal(raw, &matcher); err != nil {
		t.Fatalf("problem matcher JSON: %v", err)
	}
	if len(matcher.ProblemMatcher) != 1 || len(matcher.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("want exactly one matcher with one pattern, got %+v", matcher)
	}
	pat := matcher.ProblemMatcher[0].Pattern[0]
	re, err := regexp.Compile(pat.Regexp)
	if err != nil {
		t.Fatalf("matcher regexp: %v", err)
	}

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-C", root, "-exceptions", "", "./cmd/bvclint/testdata/lintme"}, &stdout, &stderr); got != exitFindings {
		t.Fatalf("run = %d, want findings", got)
	}
	line := strings.Split(strings.TrimSpace(stdout.String()), "\n")[0]
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("matcher regexp %q does not match driver output %q", pat.Regexp, line)
	}
	if !strings.HasSuffix(m[pat.File], "lintme.go") {
		t.Errorf("file group = %q, want a lintme.go path", m[pat.File])
	}
	if m[pat.Code] != "seedflow" {
		t.Errorf("code group = %q, want the analyzer name seedflow", m[pat.Code])
	}
	if m[pat.Line] == "" || m[pat.Column] == "" || m[pat.Message] == "" {
		t.Errorf("line/column/message groups empty in %v", m)
	}
}
