// Command bvclint is the repo's multichecker: it runs the twelve
// internal/analysis passes (see `bvclint -list`) over the module and
// exits non-zero on any finding. Suppress a single line with
//
//	//bvclint:allow <analyzer> -- <justification>
//
// (own-line directives cover the next line, trailing directives their
// own line) or add a whole-file entry to lint/exceptions.txt. Both
// suppression forms are themselves audited: a directive or exceptions
// entry that no longer suppresses anything is reported stale.
//
// Run it via `make lint` (or `make lint-strict`, which widens the
// concurrency analyzers to the binaries and scripts) or directly:
//
//	go run ./cmd/bvclint ./...
//	go run ./cmd/bvclint -json ./...
//	go run ./cmd/bvclint -list
//
// Exit codes: 0 clean, 1 findings, 2 load/usage/internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"relaxedbvc/internal/analysis"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bvclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir            = fs.String("C", ".", "run in this directory (module root)")
		exceptionsPath = fs.String("exceptions", "lint/exceptions.txt", "curated exceptions file, relative to -C (empty or missing file = no exceptions)")
		list           = fs.Bool("list", false, "list analyzers and exit")
		only           = fs.String("only", "", "single analyzer name to run (default: all)")
		jsonOut        = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		strict         = fs.Bool("strict", false, "widen analyzer scopes to cmd/ binaries and scripts/")
	)
	if err := fs.Parse(argv); err != nil {
		return exitError
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(stderr, "bvclint: unknown analyzer %q (try -list)\n", *only)
			return exitError
		}
		analyzers = []*analysis.Analyzer{a}
	}

	var exceptions []analysis.Exception
	excFile := *exceptionsPath
	if excFile != "" && !filepath.IsAbs(excFile) {
		excFile = filepath.Join(*dir, excFile)
	}
	if excFile != "" {
		var err error
		exceptions, err = analysis.ParseExceptions(excFile)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "bvclint: %v\n", err)
			return exitError
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	opts := analysis.RunOptions{}
	if *strict {
		opts.Scope = analysis.InScopeStrict
	}
	// Exceptions staleness is only decidable on a full-suite,
	// whole-tree run: a single package or single analyzer legitimately
	// leaves other entries unmatched.
	if *only == "" && len(patterns) == 1 && patterns[0] == "./..." {
		opts.StaleExceptionsPath = *exceptionsPath
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "bvclint: %v\n", err)
		return exitError
	}
	diags, err := analysis.RunAnalyzersOpts(pkgs, analyzers, exceptions, opts)
	if err != nil {
		fmt.Fprintf(stderr, "bvclint: %v\n", err)
		return exitError
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "bvclint: %v\n", err)
			return exitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "bvclint: %d finding(s)\n", len(diags))
		return exitFindings
	}
	return exitClean
}

// jsonDiag is the stable machine-readable shape of one finding; CI
// tooling and the GitHub problem matcher's JSON consumers key on these
// field names.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as one JSON array (always an array,
// `[]` when clean), in the driver's deterministic file/line order.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
