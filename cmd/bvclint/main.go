// Command bvclint is the repo's multichecker: it runs the six
// internal/analysis passes (nodeterminism, maporder, errwrap, floateq,
// seedflow, metriclabel) over the module and exits non-zero on any
// finding. Suppress a single line with
//
//	//bvclint:allow <analyzer> -- <justification>
//
// (own-line directives cover the next line, trailing directives their
// own line) or add a whole-file entry to lint/exceptions.txt. Run it
// via `make lint` or directly:
//
//	go run ./cmd/bvclint ./...
//	go run ./cmd/bvclint -list
package main

import (
	"flag"
	"fmt"
	"os"

	"relaxedbvc/internal/analysis"
)

func main() {
	var (
		exceptionsPath = flag.String("exceptions", "lint/exceptions.txt", "curated exceptions file (empty or missing file = no exceptions)")
		list           = flag.Bool("list", false, "list analyzers and exit")
		only           = flag.String("only", "", "comma-free single analyzer name to run (default: all)")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "bvclint: unknown analyzer %q (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = []*analysis.Analyzer{a}
	}

	var exceptions []analysis.Exception
	if *exceptionsPath != "" {
		var err error
		exceptions, err = analysis.ParseExceptions(*exceptionsPath)
		if err != nil && !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "bvclint: %v\n", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvclint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers, exceptions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvclint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "bvclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
