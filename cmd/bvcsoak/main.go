// Command bvcsoak is the fleet-scale deterministic soak driver: a
// sharded coordinator that sweeps large numbers of generated consensus
// instances across worker subprocesses, guided by coverage feedback,
// with a persisted seed corpus and kill-safe checkpoint/resume.
//
// The same binary is coordinator and worker: the coordinator re-execs
// itself with -worker per shard and speaks length-prefixed JSON over
// the workers' stdin/stdout.
//
// Usage examples:
//
//	# 50k-seed soak across 4 worker processes, checkpointed and corpus-backed
//	bvcsoak -budget 50000 -shards 4 -manifest soak.manifest -corpus corpus
//
//	# resume after a kill: summary comes out byte-identical
//	bvcsoak -budget 50000 -shards 4 -manifest soak.manifest -corpus corpus -resume
//
//	# 10-minute nightly soak, strict out-of-model hunting, mesh cross-check
//	bvcsoak -budget 10m -regime out -strict -transport mesh -corpus corpus
//
//	# CI regression gate: replay every persisted corpus seed
//	bvcsoak -replay-corpus -corpus corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"relaxedbvc/internal/soak"
)

func main() {
	var (
		worker       = flag.Bool("worker", false, "run as a worker process (internal; speaks the soak protocol on stdin/stdout)")
		replayCorpus = flag.Bool("replay-corpus", false, "replay every corpus entry and verify it reproduces, then exit")
		prune        = flag.Bool("prune-stale", false, "with -replay-corpus: delete entries that now pass")

		budget    = flag.String("budget", "10000", "seed count (e.g. 50000) or wall-clock duration (e.g. 10m)")
		shards    = flag.Int("shards", 4, "worker processes")
		blockSize = flag.Int("block", 256, "seeds per work block")
		baseSeed  = flag.Int64("seed", 0, "base seed folded into every generated instance")
		regime    = flag.String("regime", "mixed", "fault regime: none|within-model|out-of-model|mixed")
		protocols = flag.String("protocols", "", "comma-separated protocol subset (empty = all)")
		strict    = flag.Bool("strict", false, "count graceful out-of-model degradations as failures")
		transport = flag.String("transport", "sim", "sim, or mesh to cross-check eligible seeds on the channel mesh")
		mutFrac   = flag.Float64("mut-frac", 0.25, "fraction of the seed budget spent on coverage-guided mutation")

		corpusDir = flag.String("corpus", "", "corpus directory (replayed first, failing/novel seeds persisted)")
		manifest  = flag.String("manifest", "", "checkpoint manifest path (enables kill-safe -resume)")
		resume    = flag.Bool("resume", false, "resume from the manifest's last committed block")
		summary   = flag.String("summary", "", "write the stable-JSON summary to this path")
		inproc    = flag.Bool("inproc", false, "run workers in-process instead of forking (debugging)")
		jobs      = flag.Int("j", 1, "batch workers inside each worker process")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *worker:
		if err := soak.ServeWorker(ctx, os.Stdin, os.Stdout, workerOptions(*jobs)); err != nil {
			fmt.Fprintf(os.Stderr, "bvcsoak worker: %v\n", err)
			os.Exit(1)
		}
	case *replayCorpus:
		os.Exit(runReplay(ctx, *corpusDir, *jobs, *prune))
	default:
		os.Exit(runSoak(ctx, soakOptions{
			budget: *budget, shards: *shards, blockSize: *blockSize,
			baseSeed: *baseSeed, regime: *regime, protocols: *protocols,
			strict: *strict, transport: *transport, mutFrac: *mutFrac,
			corpus: *corpusDir, manifest: *manifest, resume: *resume,
			summary: *summary, inproc: *inproc, jobs: *jobs,
		}))
	}
}

func workerOptions(jobs int) soak.WorkerOptions {
	return soak.WorkerOptions{Workers: jobs}
}

type soakOptions struct {
	budget, regime, protocols, transport string
	corpus, manifest, summary            string
	shards, blockSize, jobs              int
	baseSeed                             int64
	mutFrac                              float64
	strict, resume, inproc               bool
}

// parseBudget reads a seed count or a wall-clock duration.
func parseBudget(s string) (int64, time.Duration, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n <= 0 {
			return 0, 0, fmt.Errorf("seed budget %d must be positive", n)
		}
		return n, 0, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return 0, 0, fmt.Errorf("duration budget %v must be positive", d)
		}
		return 0, d, nil
	}
	return 0, 0, fmt.Errorf("budget %q is neither a seed count nor a duration", s)
}

func runSoak(ctx context.Context, o soakOptions) int {
	seeds, dur, err := parseBudget(o.budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvcsoak: %v\n", err)
		return 1
	}
	protos, err := soak.NormalizeProtocols(o.protocols)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvcsoak: %v\n", err)
		return 1
	}
	opt := soak.Options{
		SeedBudget: seeds,
		Duration:   dur,
		BaseSeed:   o.baseSeed,
		Shards:     o.shards,
		BlockSize:  o.blockSize,
		MutFrac:    o.mutFrac,
		Regime:     o.regime,
		Protocols:  protos,
		Strict:     o.strict,
		Transport:  o.transport,
		Corpus:     o.corpus,
		Manifest:   o.manifest,
		Resume:     o.resume,
		Worker:     workerOptions(o.jobs),
		Log:        os.Stderr,
	}
	if !o.inproc {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvcsoak: resolve own binary: %v\n", err)
			return 1
		}
		opt.Spawn = soak.SpawnProc(self, []string{"-worker", "-j", strconv.Itoa(o.jobs)})
	}

	sum, err := soak.Run(ctx, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvcsoak: %v\n", err)
		return 1
	}
	sum.Render(os.Stdout)
	if o.summary != "" {
		data, err := sum.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvcsoak: %v\n", err)
			return 1
		}
		if err := os.WriteFile(o.summary, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bvcsoak: write summary: %v\n", err)
			return 1
		}
	}
	return 0
}

func runReplay(ctx context.Context, dir string, jobs int, prune bool) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "bvcsoak: -replay-corpus needs -corpus")
		return 1
	}
	results, err := soak.ReplayCorpus(ctx, dir, workerOptions(jobs), prune)
	for _, r := range results {
		line := fmt.Sprintf("%-10s %s seed=%d proto=%s outcome=%s", r.Verdict, r.File, r.Entry.Seed, r.Entry.Protocol, r.Entry.Outcome)
		if r.Detail != "" {
			line += " — " + r.Detail
		}
		fmt.Println(line)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvcsoak: %v\n", err)
		return 1
	}
	fmt.Printf("corpus replay: %d entries verified\n", len(results))
	return 0
}
