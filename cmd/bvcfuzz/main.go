// Command bvcfuzz hammers the protocol stack with randomized
// configurations and adversaries and checks the paper's invariants on
// every run: agreement, the mode-appropriate validity condition, and the
// Table 1 delta bounds. Any violation is printed with the seed needed to
// reproduce it, and the process exits non-zero.
//
//	bvcfuzz -runs 200 -seed 7
//	bvcfuzz -runs 50 -modes async,iterative
package main

import (
	"context"

	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/vec"
	"relaxedbvc/internal/workload"
)

var failures int

func main() {
	var (
		runs  = flag.Int("runs", 100, "randomized runs per mode")
		seed  = flag.Int64("seed", 1, "base seed")
		modes = flag.String("modes", "algo,exact,k,async,iterative", "comma-separated modes to fuzz")
	)
	flag.Parse()

	selected := map[string]bool{}
	for _, m := range strings.Split(*modes, ",") {
		selected[strings.TrimSpace(m)] = true
	}
	for name, fn := range map[string]func(int64) error{
		"algo":      fuzzALGO,
		"exact":     fuzzExact,
		"k":         fuzzK,
		"async":     fuzzAsync,
		"iterative": fuzzIterative,
	} {
		if !selected[name] {
			continue
		}
		bad := 0
		for i := 0; i < *runs; i++ {
			s := *seed*1_000_003 + int64(i)
			if err := fn(s); err != nil {
				bad++
				failures++
				fmt.Printf("FAIL mode=%s seed=%d: %v\n", name, s, err)
			}
		}
		fmt.Printf("mode %-9s: %d/%d ok\n", name, *runs-bad, *runs)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bvcfuzz: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

func randomByz(rng *rand.Rand, d int) broadcast.EIGBehavior {
	switch rng.Intn(5) {
	case 0:
		return adversary.Silent()
	case 1:
		return adversary.Equivocator(
			workload.Gaussian(rng, 1, d, 20)[0], workload.Gaussian(rng, 1, d, 20)[0])
	case 2:
		return adversary.FixedVector(workload.Gaussian(rng, 1, d, 20)[0])
	case 3:
		return adversary.RandomLiar(rng.Int63(), d, 20)
	default:
		return adversary.Garbage()
	}
}

func fuzzALGO(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(3)
	n := d + 1
	if n < 4 { // oral-messages Step 1 requires n >= 3f+1
		n = 4
	}
	cfg := &consensus.SyncConfig{
		N: n, F: 1, D: d,
		Inputs:    workload.Gaussian(rng, n, d, 1+rng.Float64()*4),
		Byzantine: map[int]broadcast.EIGBehavior{rng.Intn(n): randomByz(rng, d)},
	}
	res, err := consensus.RunDeltaRelaxedBVC(context.Background(), cfg, 2)
	if err != nil {
		return err
	}
	honest := cfg.HonestIDs()
	if consensus.AgreementError(res.Outputs, honest) != 0 {
		return fmt.Errorf("agreement violated")
	}
	delta := res.Delta[honest[0]]
	nonFaulty := cfg.NonFaultyInputs()
	if !consensus.CheckDeltaValidity(res.Outputs[honest[0]], nonFaulty, delta, 2, 1e-6) {
		return fmt.Errorf("(delta,2) validity violated (delta=%v)", delta)
	}
	if bound := minimax.Theorem9Bound(nonFaulty, n); delta >= bound {
		return fmt.Errorf("Theorem 9 violated: %v >= %v", delta, bound)
	}
	return nil
}

func fuzzExact(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := 1 + rng.Intn(3)
	f := 1
	n := (d+1)*f + 1
	if n < 3*f+1 {
		n = 3*f + 1
	}
	cfg := &consensus.SyncConfig{
		N: n, F: f, D: d,
		Inputs:    workload.Gaussian(rng, n, d, 2),
		Byzantine: map[int]broadcast.EIGBehavior{rng.Intn(n): randomByz(rng, d)},
	}
	res, err := consensus.RunExactBVC(context.Background(), cfg)
	if err != nil {
		return err
	}
	honest := cfg.HonestIDs()
	if consensus.AgreementError(res.Outputs, honest) != 0 {
		return fmt.Errorf("agreement violated")
	}
	if !consensus.CheckExactValidity(res.Outputs[honest[0]], cfg.NonFaultyInputs(), 1e-6) {
		return fmt.Errorf("exact validity violated")
	}
	return nil
}

func fuzzK(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := 3 + rng.Intn(2)
	n := d + 2
	k := 1 + rng.Intn(d)
	cfg := &consensus.SyncConfig{
		N: n, F: 1, D: d,
		Inputs:    workload.Gaussian(rng, n, d, 2),
		Byzantine: map[int]broadcast.EIGBehavior{rng.Intn(n): randomByz(rng, d)},
	}
	res, err := consensus.RunKRelaxedBVC(context.Background(), cfg, k)
	if err != nil {
		return err
	}
	honest := cfg.HonestIDs()
	if consensus.AgreementError(res.Outputs, honest) != 0 {
		return fmt.Errorf("agreement violated (k=%d)", k)
	}
	if !consensus.CheckKValidity(res.Outputs[honest[0]], cfg.NonFaultyInputs(), k, 1e-6) {
		return fmt.Errorf("k-relaxed validity violated (k=%d)", k)
	}
	return nil
}

func fuzzAsync(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(2)
	n := 3 + rng.Intn(3) // 3..5; relaxed mode needs only 3f+1 = 4; skip n=3
	if n < 4 {
		n = 4
	}
	byz := &consensus.AsyncByzantine{
		SilentFrom:  consensus.NeverMisbehave,
		CorruptFrom: consensus.NeverMisbehave,
	}
	switch rng.Intn(4) {
	case 0:
		byz.Input = workload.Gaussian(rng, 1, d, 30)[0]
	case 1:
		byz.SilentFrom = rng.Intn(3)
	case 2:
		byz.CorruptFrom = 1 + rng.Intn(2)
	default:
		byz.SilentFrom = 0
		byz.MuteRBC = true
	}
	schedules := []sched.Schedule{
		sched.FIFOSchedule{},
		sched.LIFOSchedule{},
		&sched.RandomSchedule{Rng: rand.New(rand.NewSource(seed + 1))},
	}
	cfg := &consensus.AsyncConfig{
		N: n, F: 1, D: d,
		Inputs:    workload.Gaussian(rng, n, d, 3),
		Rounds:    4 + rng.Intn(6),
		Mode:      consensus.ModeRelaxed,
		Byzantine: map[int]*consensus.AsyncByzantine{rng.Intn(n): byz},
		Schedule:  schedules[rng.Intn(len(schedules))],
	}
	res, err := consensus.RunAsyncBVC(context.Background(), cfg)
	if err != nil {
		return err
	}
	honest := cfg.HonestIDs()
	for _, i := range honest {
		if res.Outputs[i] == nil {
			return fmt.Errorf("honest %d never decided", i)
		}
	}
	// Spread trace must never grow after round 1.
	tr := res.RoundSpread
	for r := 2; r < len(tr); r++ {
		if tr[r] > tr[r-1]*(1+1e-9)+1e-12 {
			return fmt.Errorf("round spread grew at %d: %v", r, tr)
		}
	}
	return nil
}

func fuzzIterative(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(2)
	n := (d+2)*1 + 1
	scale := 1 + rng.Float64()*4
	byzRng := rand.New(rand.NewSource(seed + 2))
	cfg := &consensus.IterConfig{
		N: n, F: 1, D: d,
		Inputs: workload.Gaussian(rng, n, d, scale),
		Rounds: 8 + rng.Intn(5),
		Byzantine: map[int]consensus.IterByzantine{
			n - 1: consensus.IterByzantineFunc(func(round, to int, _ vec.V) vec.V {
				if byzRng.Intn(4) == 0 {
					return nil // intermittent silence
				}
				v := vec.New(d)
				for i := range v {
					v[i] = byzRng.NormFloat64() * 10 * scale
				}
				return v
			}),
		},
	}
	res, err := consensus.RunIterativeBVC(context.Background(), cfg)
	if err != nil {
		return err
	}
	h := res.RangeHistory
	if last := h[len(h)-1]; last > math.Max(h[0]*0.05, 1e-6) {
		return fmt.Errorf("insufficient contraction: %v -> %v", h[0], last)
	}
	honestInputs := vec.NewSet(cfg.Inputs[:n-1]...)
	for i := 0; i < n-1; i++ {
		if !consensus.CheckExactValidity(res.Outputs[i], honestInputs, 1e-5) {
			return fmt.Errorf("estimate left the honest hull")
		}
	}
	return nil
}
