// Command bvcfuzz hammers the protocol stack with randomized
// configurations and adversaries and checks the paper's invariants on
// every run: agreement, the mode-appropriate validity condition, and the
// Table 1 delta bounds. Any violation is shrunk to its minimal failing
// seed, replay-confirmed, and printed; the process exits non-zero.
//
// The command is a thin preset layer over the simtest generator and
// sweep engine — the same GenSpec/RunChecked/Sweep pipeline the soak
// driver (bvcsoak) scales out across processes — so a seed printed here
// reproduces identically there and in the Go tests.
//
//	bvcfuzz -runs 200 -seed 7
//	bvcfuzz -runs 50 -modes async,iterative
//	bvcfuzz -runs 500 -regime out-of-model -strict
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	bvc "relaxedbvc"
	"relaxedbvc/internal/simtest"
)

// modePresets maps the historical fuzz-mode names onto protocol
// subsets of the generator.
var modePresets = map[string][]bvc.Protocol{
	"algo":      {bvc.ProtocolDeltaRelaxed},
	"exact":     {bvc.ProtocolExact, bvc.ProtocolScalar},
	"k":         {bvc.ProtocolKRelaxed},
	"async":     {bvc.ProtocolAsync, bvc.ProtocolK1Async},
	"iterative": {bvc.ProtocolIterative},
	"convex":    {bvc.ProtocolConvex},
}

// modeOrder keeps the report deterministic.
var modeOrder = []string{"algo", "exact", "k", "async", "iterative", "convex"}

func main() {
	var (
		runs   = flag.Int("runs", 100, "randomized runs per mode")
		seed   = flag.Int64("seed", 1, "base seed")
		modes  = flag.String("modes", "algo,exact,k,async,iterative,convex", "comma-separated modes to fuzz")
		regime = flag.String("regime", "none", "fault regime: none|within-model|out-of-model|mixed")
		strict = flag.Bool("strict", false, "count graceful out-of-model degradations as failures")
		jobs   = flag.Int("j", 0, "batch workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	reg, err := parseRegime(*regime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvcfuzz: %v\n", err)
		os.Exit(1)
	}
	selected := map[string]bool{}
	for _, m := range strings.Split(*modes, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		if _, ok := modePresets[m]; !ok {
			fmt.Fprintf(os.Stderr, "bvcfuzz: unknown mode %q\n", m)
			os.Exit(1)
		}
		selected[m] = true
	}

	ctx := context.Background()
	failures := 0
	for _, name := range modeOrder {
		if !selected[name] {
			continue
		}
		sw := simtest.Sweep(ctx, simtest.FuzzConfig{
			Seeds:             *runs,
			BaseSeed:          *seed * 1_000_003,
			Protocols:         modePresets[name],
			Regime:            reg,
			StrictModelErrors: *strict,
			Workers:           *jobs,
		})
		fmt.Printf("mode %-9s: %d/%d ok (%d degraded)\n", name, sw.Passed, len(sw.Reports), sw.Degraded)
		if sw.Failed > 0 {
			failures += sw.Failed
			sw.Render(os.Stdout)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bvcfuzz: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all invariants held")
}

func parseRegime(s string) (simtest.Regime, error) {
	switch s {
	case "none", "":
		return simtest.RegimeNone, nil
	case "within-model", "within":
		return simtest.RegimeWithinModel, nil
	case "out-of-model", "out":
		return simtest.RegimeOutOfModel, nil
	case "mixed":
		return simtest.RegimeMixed, nil
	}
	return 0, fmt.Errorf("unknown regime %q", s)
}
