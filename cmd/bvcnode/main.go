// Command bvcnode runs ONE node of a Byzantine vector consensus cluster
// over real TCP: it joins a static peer set, accepts proposal traffic on
// an HTTP front door, runs the chosen synchronous protocol over the
// library's transport layer once per epoch, and serves the decisions
// back over HTTP. Metrics and pprof are exposed via -debug.
//
// Every node of the cluster runs the same command with the same -peers
// list and its own -id. The cluster decides bit-for-bit the same
// vectors as the deterministic simulation of the same instance.
//
// Usage examples:
//
//	# two-node loopback cluster, one epoch each (run in two shells)
//	bvcnode -id 0 -peers 127.0.0.1:9000,127.0.0.1:9001 -protocol exact -f 0 -input 1,2
//	bvcnode -id 1 -peers 127.0.0.1:9000,127.0.0.1:9001 -protocol exact -f 0 -input 3,4
//
//	# in-process 4-node cluster smoke test (CI uses this)
//	bvcnode -selfcheck
//
//	# streaming decisions: one ACS epoch per queued proposal
//	bvcnode -id 0 -peers ... -stream -epochs 5 -input 1,2
//
//	# streaming parity smoke test: sim vs mesh vs TCP (CI uses this)
//	bvcnode -stream -selfcheck
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	bvc "relaxedbvc"
	"relaxedbvc/internal/batch"
)

func main() {
	var (
		id        = flag.Int("id", 0, "this node's id (index into -peers)")
		peersFlag = flag.String("peers", "", "comma-separated host:port listen addresses, one per node id")
		protocol  = flag.String("protocol", "algo", "algo | exact | k | scalar")
		f         = flag.Int("f", 1, "max Byzantine processes")
		d         = flag.Int("d", 2, "input dimension")
		k         = flag.Int("k", 2, "projection size for -protocol k")
		p         = flag.Float64("p", 2, "Lp norm for -protocol algo (1, 2, or 0 meaning inf)")
		input     = flag.String("input", "", "default input vector, comma-separated floats (zeros if empty)")
		epochs    = flag.Int("epochs", 1, "consensus epochs to run (0 = until interrupted)")
		interval  = flag.Duration("interval", 0, "pause between epochs (use with -epochs 0)")
		front     = flag.String("front", "", "front-door HTTP address for proposals/decisions (off if empty)")
		debugAddr = flag.String("debug", "", "metrics/pprof HTTP address (off if empty)")
		selfcheck = flag.Bool("selfcheck", false, "run an in-process 4-node loopback cluster and exit")
		stream    = flag.Bool("stream", false, "run the streaming ACS decision layer: -epochs proposals decide as one multi-epoch stream")
	)
	flag.Parse()

	if *selfcheck {
		check := runSelfcheck
		if *stream {
			check = runStreamSelfcheck
		}
		if err := check(); err != nil {
			fatalf("selfcheck: %v", err)
		}
		fmt.Println("selfcheck ok")
		return
	}

	spec, err := buildSpec(*protocol, *f, *d, *k, *p)
	if err != nil {
		fatalf("%v", err)
	}
	if *stream {
		// Streaming mode pipelines epochs through ACS instead of running
		// one-shot instances; the -protocol kernel flags still pick the
		// per-epoch decision norm.
		if *f < 1 {
			fatalf("-stream needs -f >= 1 (ACS tolerates f Byzantine slots per epoch)")
		}
		spec.Protocol = bvc.ProtocolACS
		if spec.NormP == 0 && *p != 0 {
			spec.NormP = *p
		}
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fatalf("%v", err)
	}
	spec.N = len(peers)
	if *id < 0 || *id >= spec.N {
		fatalf("-id %d outside the %d-node peer list", *id, spec.N)
	}
	defIn, err := parseInput(*input, *d)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		addr, err := bvc.ServeDebug(*debugAddr)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		fmt.Printf("debug (pprof+expvar) on http://%s/debug/\n", addr)
	}

	node := &nodeState{
		spec:      spec,
		self:      *id,
		peers:     peers,
		defIn:     defIn,
		proposals: make(chan bvc.Vector, proposalQueueCap),
	}
	if *front != "" {
		addr, err := node.serveFront(*front)
		if err != nil {
			fatalf("front door: %v", err)
		}
		fmt.Printf("front door on http://%s/ (POST /propose, GET /decision)\n", addr)
	}

	if *stream {
		if err := node.runStream(ctx, *epochs); err != nil {
			fatalf("stream: %v", err)
		}
		return
	}
	// One pacing timer reused across epochs; time.After in this loop
	// would leak a live timer per epoch on long runs.
	var pace *time.Timer
	for epoch := 0; *epochs == 0 || epoch < *epochs; epoch++ {
		if epoch > 0 && *interval > 0 {
			if pace == nil {
				pace = time.NewTimer(*interval)
			} else {
				pace.Reset(*interval)
			}
			select {
			case <-pace.C:
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		if err := node.runEpoch(ctx, epoch); err != nil {
			fatalf("epoch %d: %v", epoch, err)
		}
	}
	if pace != nil {
		pace.Stop()
	}
}

// proposalQueueCap bounds buffered front-door proposals; beyond it the
// front door sheds load with 503s instead of growing without bound.
const proposalQueueCap = 64

// nodeState is the long-lived state of one bvcnode process.
type nodeState struct {
	spec  bvc.Spec
	self  int
	peers map[int]string
	defIn bvc.Vector

	proposals chan bvc.Vector

	mu       sync.Mutex
	decision *decisionRecord
}

// decisionRecord is the JSON shape of GET /decision.
type decisionRecord struct {
	Epoch  int       `json:"epoch"`
	Node   int       `json:"node"`
	Input  []float64 `json:"input"`
	Output []float64 `json:"output"`
	Delta  float64   `json:"delta"`
	Rounds int       `json:"rounds"`
	// Subset and Fingerprint are set in -stream mode: the epoch's agreed
	// slot ids, and (on the final record) the whole stream's digest.
	Subset      []int  `json:"subset,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// runEpoch runs one consensus instance over TCP: the node's input is
// the oldest queued front-door proposal, or the -input default.
func (s *nodeState) runEpoch(ctx context.Context, epoch int) error {
	in := s.defIn
	select {
	case v := <-s.proposals:
		in = v
	default:
	}
	spec := s.spec
	spec.Inputs = make([]bvc.Vector, spec.N)
	spec.Inputs[s.self] = in
	res, err := bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{
		Kind: bvc.TransportTCP, Self: s.self, Peers: s.peers,
	}))
	if err != nil {
		return err
	}
	rec := &decisionRecord{
		Epoch:  epoch,
		Node:   s.self,
		Input:  in,
		Output: res.Outputs[s.self],
		Delta:  res.Delta[s.self],
		Rounds: res.Rounds,
	}
	s.mu.Lock()
	s.decision = rec
	s.mu.Unlock()
	out, _ := json.Marshal(rec)
	fmt.Println(string(out))
	return nil
}

// runStream runs one multi-epoch ACS stream over TCP: each epoch's own
// proposal is the next queued front-door proposal (the -input default
// when the queue runs dry), and every sealed epoch prints as one JSON
// line. The final line carries the stream fingerprint every correct
// peer must match.
func (s *nodeState) runStream(ctx context.Context, epochs int) error {
	if epochs <= 0 {
		return fmt.Errorf("-stream needs -epochs >= 1 (the stream length is the epoch count)")
	}
	spec := s.spec
	spec.Proposals = make([][]bvc.Vector, epochs)
	inputs := make([]bvc.Vector, epochs)
	for e := 0; e < epochs; e++ {
		in := s.defIn
		select {
		case v := <-s.proposals:
			in = v
		default:
		}
		inputs[e] = in
		row := make([]bvc.Vector, spec.N)
		row[s.self] = in
		spec.Proposals[e] = row
	}
	res, err := bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{
		Kind: bvc.TransportTCP, Self: s.self, Peers: s.peers,
	}))
	if err != nil {
		return err
	}
	stream := res.ACS[s.self]
	for _, ep := range stream {
		rec := &decisionRecord{
			Epoch:  ep.Epoch,
			Node:   s.self,
			Input:  inputs[ep.Epoch],
			Output: ep.Output,
			Delta:  ep.Delta,
			Rounds: res.Rounds,
			Subset: ep.Subset,
		}
		if ep.Epoch == len(stream)-1 {
			rec.Fingerprint = bvc.ACSFingerprint(stream)
		}
		s.mu.Lock()
		s.decision = rec
		s.mu.Unlock()
		out, _ := json.Marshal(rec)
		fmt.Println(string(out))
	}
	return nil
}

// serveFront starts the proposal/decision HTTP server and returns its
// bound address.
func (s *nodeState) serveFront(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/propose", s.handlePropose)
	mux.HandleFunc("/decision", s.handleDecision)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // runs for process lifetime
	return ln.Addr().String(), nil
}

// handlePropose accepts one proposal per request-body line (comma-
// separated floats). The batch pool validates lines concurrently with
// panic isolation; valid vectors enter the bounded queue, and a full
// queue sheds the rest with 503 (backpressure to the client).
func (s *nodeState) handlePropose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var lines []string
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			lines = append(lines, t)
		}
	}
	if len(lines) == 0 {
		http.Error(w, "no proposals in body", http.StatusBadRequest)
		return
	}
	d := s.spec.D
	parsed := batch.Map(r.Context(), batch.Options{Workers: 4}, lines,
		func(_ context.Context, line string) (bvc.Vector, error) {
			return parseInput(line, d)
		})
	accepted, rejected, shed := 0, 0, 0
	for _, pr := range parsed {
		if pr.Err != nil {
			rejected++
			continue
		}
		select {
		case s.proposals <- pr.Value:
			accepted++
		default:
			shed++
		}
	}
	if shed > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	} else if accepted == 0 {
		w.WriteHeader(http.StatusBadRequest)
	}
	fmt.Fprintf(w, "accepted %d, rejected %d, shed %d (queue full)\n", accepted, rejected, shed)
}

func (s *nodeState) handleDecision(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.decision
	s.mu.Unlock()
	if rec == nil {
		http.Error(w, "no decision yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec) //nolint:errcheck // best-effort HTTP write
}

// buildSpec maps the protocol flags onto a Spec (inputs filled later).
func buildSpec(protocol string, f, d, k int, p float64) (bvc.Spec, error) {
	spec := bvc.Spec{F: f, D: d}
	switch protocol {
	case "algo":
		if f < 1 {
			return spec, fmt.Errorf("-protocol algo needs -f >= 1 (the relaxation radius is defined against f faults); use -protocol exact for fault-free clusters")
		}
		spec.Protocol = bvc.ProtocolDeltaRelaxed
		if p == 0 {
			p = math.Inf(1)
		}
		spec.NormP = p
	case "exact":
		spec.Protocol = bvc.ProtocolExact
	case "k":
		spec.Protocol = bvc.ProtocolKRelaxed
		spec.K = k
	case "scalar":
		spec.Protocol = bvc.ProtocolScalar
	default:
		return spec, fmt.Errorf("unknown -protocol %q (use algo, exact, k or scalar)", protocol)
	}
	return spec, nil
}

// parsePeers splits the -peers list; position = node id.
func parsePeers(s string) (map[int]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is required (comma-separated host:port, one per node)")
	}
	parts := strings.Split(s, ",")
	if len(parts) < 2 {
		return nil, fmt.Errorf("-peers needs at least 2 addresses, got %d", len(parts))
	}
	peers := make(map[int]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-peers entry %d is empty", i)
		}
		peers[i] = p
	}
	return peers, nil
}

// parseInput parses a comma-separated float vector of dimension d
// (zeros when empty).
func parseInput(s string, d int) (bvc.Vector, error) {
	if s == "" {
		return bvc.NewVector(make([]float64, d)...), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("input %q has %d coordinates, want %d", s, len(parts), d)
	}
	v := make([]float64, d)
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("input coordinate %d: %q is not a finite number", i, p)
		}
		v[i] = x
	}
	return bvc.NewVector(v...), nil
}

// runSelfcheck spins up an in-process 4-node loopback-TCP cluster
// (n=4, f=1, one scripted equivocator) and verifies agreement and
// (delta,2)-relaxed validity of the decisions — the same path CI's
// multi-node smoke test exercises.
func runSelfcheck() error {
	const n, f, d = 4, 1, 2
	spec := bvc.Spec{
		Protocol: bvc.ProtocolDeltaRelaxed, N: n, F: f, D: d,
		Inputs: []bvc.Vector{
			bvc.NewVector(0, 0), bvc.NewVector(4, 0), bvc.NewVector(0, 4), bvc.NewVector(3, 3),
		},
		Byzantine: map[int]bvc.ByzantineBehavior{
			3: bvc.Equivocator(bvc.NewVector(50, 50), bvc.NewVector(-50, -50)),
		},
	}
	listeners := make([]net.Listener, n)
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen %d: %w", i, err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := make([]*bvc.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{
				Kind: bvc.TransportTCP, Self: i, Peers: peers, Listener: listeners[i],
			}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	outputs := make([]bvc.Vector, n)
	for i, res := range results {
		outputs[i] = res.Outputs[i]
	}
	honest := []int{0, 1, 2}
	if spread := bvc.AgreementError(outputs, honest); spread != 0 {
		return fmt.Errorf("honest outputs disagree (spread %g): %v", spread, outputs)
	}
	nonFaulty := bvc.NewPointSet(spec.Inputs[0], spec.Inputs[1], spec.Inputs[2])
	for _, i := range honest {
		if !bvc.CheckDeltaValidity(outputs[i], nonFaulty, results[i].Delta[i], 2, 1e-9) {
			return fmt.Errorf("node %d output %v violates (delta,2)-validity (delta=%g)", i, outputs[i], results[i].Delta[i])
		}
	}
	fmt.Printf("4-node TCP cluster agreed on %v (delta=%g, rounds=%d)\n",
		outputs[0], results[0].Delta[0], results[0].Rounds)
	return nil
}

// runStreamSelfcheck is the streaming acceptance smoke test: a 4-node
// multi-epoch ACS instance with one scripted equivocator must decide
// the identical slot sequence — fingerprint-equal, byte for byte — on
// the deterministic simulation (clean AND under within-model link
// faults), the in-process mesh, and a real loopback-TCP cluster.
func runStreamSelfcheck() error {
	const n, f, d = 4, 1, 2
	spec := bvc.Spec{
		Protocol: bvc.ProtocolACS, N: n, F: f, D: d,
		Proposals: [][]bvc.Vector{
			{bvc.NewVector(0, 0), bvc.NewVector(4, 0), bvc.NewVector(0, 4), bvc.NewVector(3, 3)},
			{bvc.NewVector(1, 1), bvc.NewVector(5, 1), bvc.NewVector(1, 5), bvc.NewVector(-2, 2)},
			{bvc.NewVector(2, -1), bvc.NewVector(0, 3), bvc.NewVector(-3, 0), bvc.NewVector(6, 6)},
		},
		ACSByzantine: map[int]bvc.ACSBehavior{3: bvc.ACSEquivocate},
	}
	honest := []int{0, 1, 2}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	sim, err := bvc.Run(ctx, spec)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	want := bvc.ACSFingerprint(sim.ACS[0])
	for _, i := range honest {
		if got := bvc.ACSFingerprint(sim.ACS[i]); got != want {
			return fmt.Errorf("sim node %d stream fingerprint diverged", i)
		}
	}

	// Within-model link faults (duplication) must not move the stream.
	faulty := spec
	faulty.Faults = &bvc.LinkFaults{Seed: 7, LinkProfile: bvc.LinkProfile{DupProb: 0.5}}
	fres, err := bvc.Run(ctx, faulty)
	if err != nil {
		return fmt.Errorf("sim with link faults: %w", err)
	}
	for _, i := range honest {
		if got := bvc.ACSFingerprint(fres.ACS[i]); got != want {
			return fmt.Errorf("node %d stream moved under within-model duplication", i)
		}
	}

	mesh, err := bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{Kind: bvc.TransportMesh}))
	if err != nil {
		return fmt.Errorf("mesh: %w", err)
	}
	for _, i := range honest {
		if got := bvc.ACSFingerprint(mesh.ACS[i]); got != want {
			return fmt.Errorf("mesh node %d stream diverged from sim", i)
		}
	}

	listeners := make([]net.Listener, n)
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("listen %d: %w", i, err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	results := make([]*bvc.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = bvc.Run(ctx, spec, bvc.WithTransport(bvc.Transport{
				Kind: bvc.TransportTCP, Self: i, Peers: peers, Listener: listeners[i],
			}))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("tcp node %d: %w", i, err)
		}
	}
	for _, i := range honest {
		if got := bvc.ACSFingerprint(results[i].ACS[i]); got != want {
			return fmt.Errorf("tcp node %d stream diverged from sim", i)
		}
	}

	last := sim.ACS[0][len(sim.ACS[0])-1]
	fmt.Printf("4-node stream sealed %d epochs on sim+faults+mesh+tcp (fingerprint %s..., last subset %v)\n",
		len(sim.ACS[0]), want[:12], last.Subset)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bvcnode: "+format+"\n", args...)
	os.Exit(1)
}
