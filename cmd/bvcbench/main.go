// Command bvcbench regenerates every table and figure of the paper's
// reproduction (experiments E1-E20 of DESIGN.md), printing one
// pass/fail-annotated table per experiment. It can also benchmark the
// batch execution engine itself (-batch-bench), comparing a sequential
// uncached sweep against the concurrent cached engine and writing the
// measurements to a JSON report.
//
// Usage:
//
//	bvcbench                     # run everything at default budgets
//	bvcbench -exp E6             # run one experiment
//	bvcbench -quick              # small sweeps (seconds, used by CI)
//	bvcbench -trials 10 -seed 3  # more repetitions, different seed
//	bvcbench -csv                # append CSV dumps of each table
//	bvcbench -parallel           # fan experiments across the batch engine
//	bvcbench -batch-bench        # benchmark the engine, write BENCH_batch.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	bvc "relaxedbvc"
	"relaxedbvc/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "run a single experiment id (e.g. E6); empty = all")
		seed     = flag.Int64("seed", 1, "random seed")
		trials   = flag.Int("trials", 5, "trials per configuration")
		quick    = flag.Bool("quick", false, "restrict sweeps to small dimensions")
		csv      = flag.Bool("csv", false, "also print each table as CSV")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Bool("parallel", false, "run experiments concurrently on the batch engine")
		workers  = flag.Int("workers", 0, "worker pool size for -parallel and -batch-bench (0 = GOMAXPROCS)")
		bb       = flag.Bool("batch-bench", false, "benchmark the batch engine and exit")
		bbOut    = flag.String("batch-out", "BENCH_batch.json", "output path for -batch-bench")
		bbTrials = flag.Int("batch-trials", 200, "sweep size for -batch-bench")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	if *bb {
		if err := benchBatch(*bbOut, *bbTrials, *workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: batch-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick}
	failures := 0
	render := func(o *experiments.Outcome) {
		o.Render(os.Stdout)
		if *csv && o.Table != nil {
			fmt.Println("-- csv --")
			o.Table.CSV(os.Stdout)
			fmt.Println()
		}
		if !o.Pass {
			failures++
		}
	}

	switch {
	case *exp != "":
		found := false
		for _, e := range experiments.Registry() {
			if strings.EqualFold(e.ID, *exp) {
				render(e.Run(opt))
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bvcbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
	case *parallel:
		// The engine preserves registry order in its results, so the
		// report reads identically to a sequential run.
		for _, o := range experiments.RunAll(context.Background(), opt, *workers) {
			render(o)
		}
	default:
		for _, e := range experiments.Registry() {
			render(e.Run(opt))
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bvcbench: %d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments PASS")
}

// benchReport is the BENCH_batch.json schema.
type benchReport struct {
	// Machine / run shape.
	NumCPU        int `json:"num_cpu"`
	GOMAXPROCS    int `json:"gomaxprocs"`
	Workers       int `json:"workers"`
	Trials        int `json:"trials"`
	UniqueConfigs int `json:"unique_configs"`
	RepeatsPerCfg int `json:"repeats_per_config"`

	// Timings. The sequential baseline is the pre-engine execution
	// model: one trial at a time, no kernel caching (the seed tree had
	// none). The engine run is RunBatch with shared caches on.
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	SeqTrialsPerSec   float64 `json:"sequential_trials_per_sec"`
	ParTrialsPerSec   float64 `json:"parallel_trials_per_sec"`
	Speedup           float64 `json:"speedup"`

	// Cache behavior during the engine run.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	// OutputsIdentical is the bit-for-bit comparison of every trial's
	// outputs and deltas across the two runs.
	OutputsIdentical bool `json:"outputs_identical"`
}

// benchSpecs builds the delta-relaxed sweep: unique configurations
// (varying system size, dimension, norm and inputs), each repeated so
// the batch resembles a real experiment sweep (Options.Trials repeats
// the same configuration to average timing noise) and the shared cache
// has repeats to absorb.
func benchSpecs(total int, seed int64) (specs []bvc.Spec, unique, repeats int) {
	repeats = 5
	unique = total / repeats
	if unique == 0 {
		unique = 1
	}
	// The norm mix leans toward p = 2 — the paper's default norm and
	// the heaviest kernel (the L2 minimax solver) — with L1 and LInf
	// LPs mixed in.
	norms := []float64{2, 1, 2, math.Inf(1)}
	uniq := make([]bvc.Spec, unique)
	for c := range uniq {
		// Full (n, d, norm) cross product: n cycles fastest, then d,
		// then the norm, so no field aliases with another.
		n := 4 + c%4     // 4..7 processes
		d := 3 + (c/4)%3 // 3..5 dimensions (the d >= 3 regime of Theorem 9)
		p := norms[(c/12)%len(norms)]
		uniq[c] = bvc.Spec{
			Protocol: bvc.ProtocolDeltaRelaxed,
			N:        n, F: 1, D: d,
			NormP:  p,
			Inputs: benchInputs(seed+int64(c), n, d),
		}
	}
	for len(specs) < total {
		specs = append(specs, uniq[len(specs)%unique])
	}
	return specs, unique, repeats
}

func benchInputs(seed int64, n, d int) []bvc.Vector {
	// Deterministic but spread inputs; a tiny LCG keeps this free of
	// rand-API churn.
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*10 - 5
	}
	inputs := make([]bvc.Vector, n)
	for i := range inputs {
		v := make([]float64, d)
		for j := range v {
			v[j] = next()
		}
		inputs[i] = bvc.NewVector(v...)
	}
	return inputs
}

func benchBatch(outPath string, total, workers int, seed int64) error {
	specs, unique, repeats := benchSpecs(total, seed)
	ctx := context.Background()

	// Baseline: the pre-engine execution model — strictly sequential,
	// no kernel caching.
	bvc.SetCaching(false)
	bvc.ResetCaches()
	seqStart := time.Now()
	seqResults := make([]*bvc.Result, len(specs))
	for i, spec := range specs {
		r, err := bvc.Run(ctx, spec)
		if err != nil {
			return fmt.Errorf("sequential trial %d: %w", i, err)
		}
		seqResults[i] = r
	}
	seqElapsed := time.Since(seqStart)

	// Engine: concurrent workers sharing the kernel caches.
	bvc.SetCaching(true)
	bvc.ResetCaches()
	parStart := time.Now()
	batched := bvc.RunBatch(ctx, bvc.BatchOptions{Workers: workers}, specs)
	parElapsed := time.Since(parStart)
	if err := bvc.FirstBatchErr(batched); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	stats := bvc.CacheStats().Totals()

	identical := true
	for i := range specs {
		if !sameResult(seqResults[i], batched[i].Result) {
			identical = false
			fmt.Fprintf(os.Stderr, "bvcbench: trial %d outputs differ between sequential and batch runs\n", i)
		}
	}

	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	rep := benchReport{
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       w,
		Trials:        len(specs),
		UniqueConfigs: unique,
		RepeatsPerCfg: repeats,

		SequentialSeconds: seqElapsed.Seconds(),
		ParallelSeconds:   parElapsed.Seconds(),
		SeqTrialsPerSec:   float64(len(specs)) / seqElapsed.Seconds(),
		ParTrialsPerSec:   float64(len(specs)) / parElapsed.Seconds(),
		Speedup:           seqElapsed.Seconds() / parElapsed.Seconds(),

		CacheHits:   stats.Hits,
		CacheMisses: stats.Misses,
		CacheHitRate: func() float64 {
			if stats.Hits+stats.Misses == 0 {
				return 0
			}
			return float64(stats.Hits) / float64(stats.Hits+stats.Misses)
		}(),

		OutputsIdentical: identical,
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("batch bench: %d trials (%d unique x %d repeats), %d workers on %d CPU(s)\n",
		rep.Trials, rep.UniqueConfigs, rep.RepeatsPerCfg, rep.Workers, rep.NumCPU)
	fmt.Printf("  sequential (uncached): %6.2fs  %7.1f trials/s\n", rep.SequentialSeconds, rep.SeqTrialsPerSec)
	fmt.Printf("  batch engine (cached): %6.2fs  %7.1f trials/s\n", rep.ParallelSeconds, rep.ParTrialsPerSec)
	fmt.Printf("  speedup %.2fx, cache hit rate %.1f%%, outputs identical: %v\n",
		rep.Speedup, 100*rep.CacheHitRate, rep.OutputsIdentical)
	fmt.Printf("wrote %s\n", outPath)
	if !identical {
		return fmt.Errorf("outputs differ between sequential and batch runs")
	}
	return nil
}

// sameResult compares two runs' outputs and deltas bit-for-bit.
func sameResult(a, b *bvc.Result) bool {
	if len(a.Outputs) != len(b.Outputs) || len(a.Delta) != len(b.Delta) {
		return false
	}
	for i := range a.Outputs {
		if len(a.Outputs[i]) != len(b.Outputs[i]) {
			return false
		}
		for j := range a.Outputs[i] {
			if math.Float64bits(a.Outputs[i][j]) != math.Float64bits(b.Outputs[i][j]) {
				return false
			}
		}
	}
	for i := range a.Delta {
		if math.Float64bits(a.Delta[i]) != math.Float64bits(b.Delta[i]) {
			return false
		}
	}
	return true
}
