// Command bvcbench regenerates every table and figure of the paper's
// reproduction (experiments E1-E21 of DESIGN.md), printing one
// pass/fail-annotated table per experiment. It can also benchmark the
// batch execution engine itself (-batch-bench), comparing a sequential
// uncached sweep against the concurrent cached engine and writing the
// measurements to a JSON report.
//
// Usage:
//
//	bvcbench                     # run everything at default budgets
//	bvcbench -exp E6             # run one experiment
//	bvcbench -quick              # small sweeps (seconds, used by CI)
//	bvcbench -trials 10 -seed 3  # more repetitions, different seed
//	bvcbench -csv                # append CSV dumps of each table
//	bvcbench -parallel           # fan experiments across the batch engine
//	bvcbench -batch-bench        # benchmark the engine, write BENCH_batch.json
//	bvcbench -kernel-bench       # benchmark kernel parallelism, write BENCH_kernels.json
//	bvcbench -kernel-bench -kernel-profile prof/  # also write cpu/heap pprof profiles
//	bvcbench -metrics-out m.json # per-experiment metrics deltas + totals
//	bvcbench -pprof :6060        # expose pprof/expvar while running
//	bvcbench -fault-fuzz         # seed-sweeping fault/schedule fuzzer
//	bvcbench -fault-fuzz -fault-regime out -fault-seeds 128
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	bvc "relaxedbvc"
	"relaxedbvc/internal/bench"
	"relaxedbvc/internal/experiments"
	"relaxedbvc/internal/simtest"
)

func main() {
	var (
		exp       = flag.String("exp", "", "run a single experiment id (e.g. E6); empty = all")
		seed      = flag.Int64("seed", 1, "random seed")
		trials    = flag.Int("trials", 5, "trials per configuration")
		quick     = flag.Bool("quick", false, "restrict sweeps to small dimensions")
		csv       = flag.Bool("csv", false, "also print each table as CSV")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		parallel  = flag.Bool("parallel", false, "run experiments concurrently on the batch engine")
		workers   = flag.Int("workers", 0, "worker pool size for -parallel and -batch-bench (0 = GOMAXPROCS)")
		bb        = flag.Bool("batch-bench", false, "benchmark the batch engine and exit")
		bbOut     = flag.String("batch-out", "BENCH_batch.json", "output path for -batch-bench")
		bbTrials  = flag.Int("batch-trials", 200, "sweep size for -batch-bench")
		kb        = flag.Bool("kernel-bench", false, "benchmark kernel parallelism (1 vs N workers) and exit")
		kbOut     = flag.String("kernel-out", "BENCH_kernels.json", "output path for -kernel-bench")
		kbProf    = flag.String("kernel-profile", "", "write cpu.pprof and mem.pprof of the kernel bench into this directory (implies -kernel-bench)")
		metOut    = flag.String("metrics-out", "", "write per-experiment metrics deltas and registry totals to this JSON file (runs experiments sequentially for exact attribution)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and an expvar metrics snapshot on this address (e.g. :6060) while running")
		ffuzz     = flag.Bool("fault-fuzz", false, "run the invariant-checking fault/schedule fuzzer (internal/simtest) and exit")
		fseeds    = flag.Int("fault-seeds", 64, "seed count for -fault-fuzz (seeds run -seed..-seed+N-1)")
		fregime   = flag.String("fault-regime", "within", "fault pattern class for -fault-fuzz: none, within, out or mixed")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := bvc.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("pprof/expvar listening on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	if *ffuzz {
		var regime simtest.Regime
		switch *fregime {
		case "none":
			regime = simtest.RegimeNone
		case "within":
			regime = simtest.RegimeWithinModel
		case "out":
			regime = simtest.RegimeOutOfModel
		case "mixed":
			regime = simtest.RegimeMixed
		default:
			fmt.Fprintf(os.Stderr, "bvcbench: -fault-regime %q (want none, within, out or mixed)\n", *fregime)
			os.Exit(2)
		}
		// Inside the model every seed must pass; outside it, typed
		// degradations are expected and only genuine failures (invariant
		// violations, untyped errors) are fatal. The sweep itself always
		// runs strict so the minimal failing seed is shrunk, replayed and
		// reported either way.
		strict := regime == simtest.RegimeNone || regime == simtest.RegimeWithinModel
		sw := simtest.Sweep(context.Background(), simtest.FuzzConfig{
			Seeds: *fseeds, BaseSeed: *seed, Regime: regime,
			StrictModelErrors: true, Workers: *workers,
		})
		sw.Render(os.Stdout)
		genuine := 0
		for _, r := range sw.Reports {
			if r.Failed(false) {
				genuine++
			}
		}
		if genuine > 0 || (strict && sw.Failed > 0) {
			fmt.Fprintf(os.Stderr, "bvcbench: fault fuzz FAILED (%d genuine, %d strict)\n", genuine, sw.Failed)
			os.Exit(1)
		}
		fmt.Println("fault fuzz PASS")
		return
	}

	if *kb || *kbProf != "" {
		// With -kernel-profile the whole bench (legacy, sequential and
		// parallel lanes alike) runs under the CPU profiler, and a heap
		// profile is written after the run — the inputs for deciding
		// where the next fast-path optimization should go.
		if *kbProf != "" {
			if err := os.MkdirAll(*kbProf, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "bvcbench: -kernel-profile: %v\n", err)
				os.Exit(1)
			}
			cpuFile, err := os.Create(filepath.Join(*kbProf, "cpu.pprof"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bvcbench: -kernel-profile: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(cpuFile); err != nil {
				fmt.Fprintf(os.Stderr, "bvcbench: -kernel-profile: %v\n", err)
				os.Exit(1)
			}
			defer func() {
				pprof.StopCPUProfile()
				cpuFile.Close()
				memPath := filepath.Join(*kbProf, "mem.pprof")
				memFile, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bvcbench: -kernel-profile: %v\n", err)
					os.Exit(1)
				}
				defer memFile.Close()
				runtime.GC() // settle live-heap accounting before the snapshot
				if err := pprof.WriteHeapProfile(memFile); err != nil {
					fmt.Fprintf(os.Stderr, "bvcbench: -kernel-profile: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s and %s\n", filepath.Join(*kbProf, "cpu.pprof"), memPath)
			}()
		}
		rep, err := bench.RunKernels(*workers, *seed, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: kernel-bench: %v\n", err)
			os.Exit(1)
		}
		rep.Summarize(os.Stdout)
		if err := rep.Write(*kbOut); err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: kernel-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *kbOut)
		return
	}

	if *bb {
		rep, err := bench.Run(context.Background(), *bbTrials, *workers, *seed, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: batch-bench: %v\n", err)
			os.Exit(1)
		}
		rep.Summarize(os.Stdout)
		if err := rep.Write(*bbOut); err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: batch-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *bbOut)
		return
	}

	opt := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick}
	failures := 0
	render := func(o *experiments.Outcome) {
		o.Render(os.Stdout)
		if *csv && o.Table != nil {
			fmt.Println("-- csv --")
			o.Table.CSV(os.Stdout)
			fmt.Println()
		}
		if !o.Pass {
			failures++
		}
	}

	switch {
	case *metOut != "":
		if *exp != "" || *parallel {
			fmt.Fprintln(os.Stderr, "bvcbench: -metrics-out runs every experiment sequentially; it is incompatible with -exp and -parallel")
			os.Exit(2)
		}
		outcomes := experiments.RunAllInstrumented(context.Background(), opt)
		for _, o := range outcomes {
			render(o)
		}
		doc := bench.BuildMetricsDoc(outcomes, bvc.MetricsSnapshot())
		if err := doc.Write(*metOut); err != nil {
			fmt.Fprintf(os.Stderr, "bvcbench: -metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metOut)
	case *exp != "":
		found := false
		for _, e := range experiments.Registry() {
			if strings.EqualFold(e.ID, *exp) {
				render(e.Run(opt))
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bvcbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
	case *parallel:
		// The engine preserves registry order in its results, so the
		// report reads identically to a sequential run.
		for _, o := range experiments.RunAll(context.Background(), opt, *workers) {
			render(o)
		}
	default:
		for _, e := range experiments.Registry() {
			render(e.Run(opt))
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bvcbench: %d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments PASS")
}
