// Command bvcbench regenerates every table and figure of the paper's
// reproduction (experiments E1-E14 of DESIGN.md), printing one
// pass/fail-annotated table per experiment.
//
// Usage:
//
//	bvcbench                     # run everything at default budgets
//	bvcbench -exp E6             # run one experiment
//	bvcbench -quick              # small sweeps (seconds, used by CI)
//	bvcbench -trials 10 -seed 3  # more repetitions, different seed
//	bvcbench -csv                # append CSV dumps of each table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxedbvc/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "run a single experiment id (e.g. E6); empty = all")
		seed   = flag.Int64("seed", 1, "random seed")
		trials = flag.Int("trials", 5, "trials per configuration")
		quick  = flag.Bool("quick", false, "restrict sweeps to small dimensions")
		csv    = flag.Bool("csv", false, "also print each table as CSV")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	opt := experiments.Options{Seed: *seed, Trials: *trials, Quick: *quick}
	failures := 0
	run := func(id string, runner experiments.Runner) {
		o := runner(opt)
		o.Render(os.Stdout)
		if *csv && o.Table != nil {
			fmt.Println("-- csv --")
			o.Table.CSV(os.Stdout)
			fmt.Println()
		}
		if !o.Pass {
			failures++
		}
	}

	if *exp != "" {
		found := false
		for _, e := range experiments.Registry() {
			if strings.EqualFold(e.ID, *exp) {
				run(e.ID, e.Run)
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "bvcbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
	} else {
		for _, e := range experiments.Registry() {
			run(e.ID, e.Run)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "bvcbench: %d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments PASS")
}
