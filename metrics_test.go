package relaxedbvc

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"relaxedbvc/internal/metrics"
)

// metricsPass resets the registry and the kernel caches, runs a fixed
// seeded batch on a single worker, and returns the resulting counter
// section. One worker keeps cache hit/miss attribution deterministic
// (concurrent workers race for who computes a shared entry first);
// counters are the deterministic slice of the registry — wall-time
// histograms and gauges are not expected to repeat.
func metricsPass(t *testing.T) map[string]int64 {
	t.Helper()
	metrics.ResetDefault()
	ResetCaches()
	norms := []float64{2, 1, LInf}
	specs := make([]Spec, 12)
	for i := range specs {
		n := 4 + i%3
		specs[i] = Spec{
			Protocol: ProtocolDeltaRelaxed,
			N:        n, F: 1, D: 3,
			NormP:  norms[i%len(norms)],
			Inputs: deterministicInputs(int64(100+i%4), n, 3),
		}
	}
	results := RunBatch(context.Background(), BatchOptions{Workers: 1}, specs)
	if err := FirstBatchErr(results); err != nil {
		t.Fatal(err)
	}
	counters := metrics.Snap().Counters
	// sync.Pool allocation counts depend on what the pool retained from
	// earlier passes (and on GC), so the *_news_total arena counters are
	// the one legitimately nondeterministic family (their _gets_total
	// twins stay deterministic and remain compared).
	for name := range counters {
		if strings.HasSuffix(name, "_news_total") {
			delete(counters, name)
		}
	}
	return counters
}

func deterministicInputs(seed int64, n, d int) []Vector {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*10 - 5
	}
	inputs := make([]Vector, n)
	for i := range inputs {
		v := make([]float64, d)
		for j := range v {
			v[j] = next()
		}
		inputs[i] = NewVector(v...)
	}
	return inputs
}

// TestMetricsSnapshotDeterminism runs the same seeded workload twice
// and requires identical counter values: rounds, messages, LP solves
// and pivots, cache hits/misses — everything the protocols and kernels
// count must be a pure function of the inputs.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	a := metricsPass(t)
	b := metricsPass(t)
	if !reflect.DeepEqual(a, b) {
		for k, va := range a {
			if vb := b[k]; va != vb {
				t.Errorf("counter %s: first run %d, second run %d", k, va, vb)
			}
		}
		for k := range b {
			if _, ok := a[k]; !ok {
				t.Errorf("counter %s only present in second run", k)
			}
		}
		t.Fatal("seeded runs produced different counter snapshots")
	}
	for _, name := range []string{
		"consensus_runs_total", "consensus_rounds_total", "consensus_messages_total",
		"lp_solves_total", "lp_pivots_total", "batch_trials_total",
	} {
		if a[name] == 0 {
			t.Errorf("counter %s is zero after a 12-trial sweep", name)
		}
	}
}

// TestRunAttachesMetrics pins the Result.Metrics contract of the
// unified API: every successful Run carries a snapshot with the
// protocol name, wall time and the network statistics of the run.
func TestRunAttachesMetrics(t *testing.T) {
	inputs := deterministicInputs(7, 5, 3)
	res, err := Run(context.Background(), Spec{
		Protocol: ProtocolDeltaRelaxed,
		N:        5, F: 1, D: 3,
		Inputs: inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m == nil {
		t.Fatal("Result.Metrics is nil")
	}
	if m.Protocol != "delta-relaxed" {
		t.Fatalf("protocol %q", m.Protocol)
	}
	if m.WallNanos <= 0 {
		t.Fatalf("wall nanos %d", m.WallNanos)
	}
	if m.Rounds != res.Rounds || m.Messages != res.Messages {
		t.Fatalf("metrics (%d rounds, %d msgs) disagree with result (%d, %d)",
			m.Rounds, m.Messages, res.Rounds, res.Messages)
	}
	if m.Rounds == 0 || m.Messages == 0 {
		t.Fatal("sync run reported zero rounds or messages")
	}
	if m.EIGTreeNodes == 0 {
		t.Fatal("oral broadcast reported an empty EIG tree")
	}
}

// TestRunMetricsCountByzantineDrops checks the drop counter end to end:
// a crash-style Byzantine sender that stays silent must show up as
// dropped messages in the run's metrics.
func TestRunMetricsCountByzantineDrops(t *testing.T) {
	inputs := deterministicInputs(9, 5, 2)
	res, err := Run(context.Background(), Spec{
		Protocol: ProtocolExact,
		N:        5, F: 1, D: 2,
		Inputs:    inputs,
		Byzantine: map[int]ByzantineBehavior{4: Silent()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ByzantineDrops == 0 {
		t.Fatal("silent Byzantine process produced zero recorded drops")
	}
}
