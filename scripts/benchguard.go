// Command benchguard is the bench-regression gate behind `make
// bench-guard` and the advisory CI job: it reruns the batch-engine
// benchmark sweep (the same harness as `bvcbench -batch-bench`) and
// compares the fresh measurements against the committed
// BENCH_batch.json baseline, failing when parallel throughput regressed
// by more than the threshold (default 25%) or when the engine's outputs
// diverged from the sequential baseline.
//
// With -kernels it guards the kernel-parallelism report instead: it
// reruns the 1-vs-N-worker kernel benchmark (`bvcbench -kernel-bench`)
// and compares against BENCH_kernels.json, failing on output
// divergence, allocating warm cache lookups, per-case throughput
// regression, or a gated kernel missing its speedup floor on multicore
// machines.
//
// With -acs it guards the streaming ACS throughput report instead: it
// reruns the epoch-batch sweep on the deterministic simulation and
// compares against BENCH_acs.json, failing on cross-run stream
// divergence (nondeterminism) or a per-case epochs/sec regression
// beyond the threshold.
//
// With -soak it gates a soak summary instead of running anything: it
// loads the stable-JSON document `bvcsoak -summary` wrote and fails on
// any unshrunk failure — a failing block whose reproducer did not
// replay-confirm is either a nondeterminism bug or an untrustworthy
// corpus entry, and neither may land.
//
// Usage:
//
//	go run ./scripts                  # guard against BENCH_batch.json
//	go run ./scripts -update          # refresh the baseline instead of guarding
//	go run ./scripts -kernels         # guard against BENCH_kernels.json
//	go run ./scripts -kernels -update # refresh the kernel baseline
//	go run ./scripts -acs             # guard against BENCH_acs.json
//	go run ./scripts -acs -update     # refresh the ACS baseline
//	go run ./scripts -soak            # gate soak-summary.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"relaxedbvc/internal/bench"
	"relaxedbvc/internal/soak"
)

func main() {
	var (
		base      = flag.String("base", "BENCH_batch.json", "committed baseline report")
		trials    = flag.Int("trials", 200, "sweep size (match the baseline's trial count)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "sweep seed (match the baseline)")
		threshold = flag.Float64("threshold", bench.DefaultThreshold, "relative throughput loss that fails the guard")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of guarding")
		kernels   = flag.Bool("kernels", false, "guard the kernel-parallelism report instead of the batch report")
		kbase     = flag.String("kernel-base", "BENCH_kernels.json", "committed kernel baseline report")
		acsMode   = flag.Bool("acs", false, "guard the streaming ACS throughput report instead of the batch report")
		abase     = flag.String("acs-base", "BENCH_acs.json", "committed ACS baseline report")
		soakMode  = flag.Bool("soak", false, "gate a soak summary document instead of benchmarking")
		soakSum   = flag.String("soak-summary", "soak-summary.json", "soak summary written by bvcsoak -summary")
	)
	flag.Parse()

	if *soakMode {
		guardSoak(*soakSum)
		return
	}
	if *kernels {
		guardKernels(*kbase, *workers, *seed, *threshold, *update)
		return
	}
	if *acsMode {
		guardACS(*abase, *seed, *threshold, *update)
		return
	}

	rep, err := bench.Run(context.Background(), *trials, *workers, *seed, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	rep.Summarize(os.Stdout)

	if *update {
		if err := rep.Write(*base); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("updated %s\n", *base)
		return
	}

	baseline, err := bench.Load(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: loading baseline: %v\n", err)
		os.Exit(1)
	}
	if err := bench.Compare(rep, baseline, *threshold, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("bench guard PASS")
}

// guardKernels is the -kernels mode: rerun the kernel benchmark and
// guard (or refresh) the BENCH_kernels.json baseline.
func guardKernels(base string, workers int, seed int64, threshold float64, update bool) {
	rep, err := bench.RunKernels(workers, seed, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: kernels: %v\n", err)
		os.Exit(1)
	}
	rep.Summarize(os.Stdout)

	if update {
		if err := rep.Write(base); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: kernels: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("updated %s\n", base)
		return
	}

	baseline, err := bench.LoadKernels(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: loading kernel baseline: %v\n", err)
		os.Exit(1)
	}
	if err := bench.CompareKernels(rep, baseline, threshold, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("kernel bench guard PASS")
}

// guardACS is the -acs mode: rerun the streaming ACS benchmark and
// guard (or refresh) the BENCH_acs.json baseline.
func guardACS(base string, seed int64, threshold float64, update bool) {
	rep, err := bench.RunACS(context.Background(), seed, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: acs: %v\n", err)
		os.Exit(1)
	}
	rep.Summarize(os.Stdout)

	if update {
		if err := rep.Write(base); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: acs: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("updated %s\n", base)
		return
	}

	baseline, err := bench.LoadACS(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: loading ACS baseline: %v\n", err)
		os.Exit(1)
	}
	if err := bench.CompareACS(rep, baseline, threshold, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("acs bench guard PASS")
}

// guardSoak is the -soak mode: load a soak summary and fail on any
// unshrunk failure. Shrunk, replay-confirmed failures are allowed
// through — they become corpus regression entries that the PR smoke
// job's corpus replay keeps catching — but a reproducer that does not
// reproduce is never acceptable.
func guardSoak(path string) {
	sum, err := soak.LoadSummary(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: soak: %v\n", err)
		os.Exit(1)
	}
	sum.Render(os.Stdout)
	if sum.UnshrunkFailures > 0 {
		for _, f := range sum.Failing {
			if !f.Shrunk {
				fmt.Fprintf(os.Stderr, "benchguard: soak: block %d seed %d (%s, %s) failed but its replay did not reproduce the signature\n",
					f.Block, f.Seed.Seed, f.Seed.Protocol, f.Seed.Outcome)
			}
		}
		fmt.Fprintf(os.Stderr, "benchguard: soak: FAIL: %d unshrunk failure(s)\n", sum.UnshrunkFailures)
		os.Exit(1)
	}
	fmt.Printf("soak guard PASS (%d seeds, %d failing blocks all shrunk and replay-confirmed)\n",
		sum.SeedsRun, len(sum.Failing))
}
