// Package relaxedbvc is a library for relaxed Byzantine vector consensus,
// reproducing "Relaxed Byzantine Vector Consensus" by Zhuolun Xiang and
// Nitin H. Vaidya (arXiv:1601.08067; brief announcement at SPAA 2016).
//
// The exact Byzantine vector consensus problem asks n processes, up to f
// of them Byzantine, to agree on a vector inside the convex hull of the
// non-faulty processes' d-dimensional inputs. Tight bounds require
// n >= max(3f+1, (d+1)f+1) processes synchronously and n >= (d+2)f+1
// asynchronously — painful when d is large. The paper studies two
// relaxations of the validity condition:
//
//   - k-relaxed validity: the output need only lie in the convex hull of
//     every k-coordinate projection of the non-faulty inputs (Definition
//     6). Result: for 2 <= k <= d-1 the bounds do not improve; k = 1
//     drops the requirement to n >= 3f+1.
//   - (delta,p)-relaxed validity: the output may be within Lp distance
//     delta of the hull (Definition 9). Result: for constant delta the
//     bounds do not improve either — but when delta may depend on the
//     inputs, n = d+1 processes suffice (f = 1, d >= 3) with
//     delta* < min(min_e||e||/2, max_e||e||/(n-2))  (Theorem 9),
//     and analogous bounds for f >= 2 (Theorem 12, Conjecture 1) and
//     other norms (Theorem 14) and asynchrony (Theorem 15).
//
// This library implements, from scratch on the Go standard library:
//
//   - the synchronous protocols (exact BVC, k-relaxed BVC, and the
//     paper's Algorithm ALGO for input-dependent (delta,p)-relaxed BVC)
//     over a simulated complete network with real Byzantine adversaries
//     and oral-messages (EIG) Byzantine broadcast;
//   - the asynchronous Relaxed Verified Averaging algorithm of Section
//     10 over Bracha reliable broadcast with genuine witness
//     verification;
//   - the geometric machinery: exact LP-based convex hull predicates,
//     relaxed hulls H_k and H_(delta,p), the Gamma/Psi intersection
//     regions, Wolfe min-norm-point L2 distances, simplex inradius
//     closed forms (Lemmas 11-15), Tverberg partition search, and the
//     delta* minimax solver;
//   - an experiment harness regenerating every quantitative claim of the
//     paper (Table 1, Figure 1's scenarios and Theorems 1-15); see
//     EXPERIMENTS.md and cmd/bvcbench.
//
// The top-level package re-exports the stable public API; packages under
// internal/ hold the implementation.
package relaxedbvc

import (
	"context"
	"math"
	"math/rand"

	"relaxedbvc/internal/adversary"
	"relaxedbvc/internal/broadcast"
	"relaxedbvc/internal/consensus"
	"relaxedbvc/internal/geom"
	"relaxedbvc/internal/minimax"
	"relaxedbvc/internal/relax"
	"relaxedbvc/internal/sched"
	"relaxedbvc/internal/trace"
	"relaxedbvc/internal/tverberg"
	"relaxedbvc/internal/vec"
)

// Vector is a point in R^d (an input or output of consensus).
type Vector = vec.V

// PointSet is an ordered multiset of vectors.
type PointSet = vec.Set

// NewVector builds a vector from coordinates.
func NewVector(xs ...float64) Vector { return vec.Of(xs...) }

// NewPointSet builds a multiset from vectors.
func NewPointSet(pts ...Vector) *PointSet { return vec.NewSet(pts...) }

// LInf is the value to pass as the norm parameter p for the L-infinity
// norm.
var LInf = math.Inf(1)

// --- Synchronous consensus (exact, Section 9 / prior work) ---

// SyncConfig configures a synchronous consensus run; see
// consensus.SyncConfig.
//
// Deprecated: build a Spec instead; the deprecated Run* wrappers are
// the only consumers of this alias.
type SyncConfig = consensus.SyncConfig

// SyncResult is the outcome of a synchronous run.
type SyncResult = consensus.SyncResult

// ByzantineBehavior scripts a Byzantine process's broadcast-level
// behavior (see the adversary constructors below).
type ByzantineBehavior = broadcast.EIGBehavior

// RunExactBVC runs exact Byzantine vector consensus [Vaidya-Garg 2013]:
// Byzantine-broadcast all inputs, decide a deterministic point of
// Gamma(S). Requires n >= max(3f+1, (d+1)f+1).
//
// Deprecated: use Run with Spec{Protocol: ProtocolExact}, which adds
// context cancellation and the unified Result.
func RunExactBVC(cfg *SyncConfig) (*SyncResult, error) {
	return consensus.RunExactBVC(context.Background(), cfg)
}

// RunKRelaxedBVC runs k-relaxed exact BVC (Definition 7). k = 1 needs
// only n >= 3f+1; 2 <= k <= d needs n >= (d+1)f+1 (Theorem 3).
//
// Deprecated: use Run with Spec{Protocol: ProtocolKRelaxed, K: k}.
func RunKRelaxedBVC(cfg *SyncConfig, k int) (*SyncResult, error) {
	return consensus.RunKRelaxedBVC(context.Background(), cfg, k)
}

// RunDeltaRelaxedBVC runs Algorithm ALGO (Section 9): (delta,p)-relaxed
// exact BVC with the smallest input-dependent delta. p may be 1, 2 or
// LInf. Works with n >= 3f+1 processes; the achieved delta per process is
// in SyncResult.Delta and obeys the Table 1 bounds.
//
// Deprecated: use Run with Spec{Protocol: ProtocolDeltaRelaxed, NormP: p}.
func RunDeltaRelaxedBVC(cfg *SyncConfig, p float64) (*SyncResult, error) {
	return consensus.RunDeltaRelaxedBVC(context.Background(), cfg, p)
}

// RunScalarConsensus runs exact scalar (d = 1) Byzantine consensus.
//
// Deprecated: use Run with Spec{Protocol: ProtocolScalar}.
func RunScalarConsensus(cfg *SyncConfig) (*SyncResult, error) {
	return consensus.RunScalarConsensus(context.Background(), cfg)
}

// ConvexResult is the outcome of convex hull consensus.
type ConvexResult = consensus.ConvexResult

// RunConvexHullConsensus runs the convex hull consensus generalization
// ([Tseng-Vaidya]): non-faulty processes agree on an identical polytope
// (an inner approximation of Gamma(S) by support points along a
// deterministic direction fan) contained in the hull of the non-faulty
// inputs. Requires the exact-BVC process counts.
//
// Deprecated: use Run with Spec{Protocol: ProtocolConvex, Directions: n}.
func RunConvexHullConsensus(cfg *SyncConfig, directions int) (*ConvexResult, error) {
	return consensus.RunConvexHullConsensus(context.Background(), cfg, directions)
}

// CheckConvexValidity reports whether every polytope vertex lies in the
// hull of the non-faulty inputs.
func CheckConvexValidity(vertices []Vector, nonFaulty *PointSet, tol float64) bool {
	return consensus.CheckConvexValidity(vertices, nonFaulty, tol)
}

// IterConfig configures an iterative approximate BVC run (the [18]
// algorithm family: per-round value exchange with safe-area updates).
//
// Deprecated: build a Spec instead; the deprecated RunIterativeBVC
// wrapper is the only consumer of this alias.
type IterConfig = consensus.IterConfig

// IterResult is the outcome of an iterative run, including the per-round
// honest range history.
type IterResult = consensus.IterResult

// IterByzantine scripts a Byzantine process in the iterative protocol.
type IterByzantine = consensus.IterByzantine

// IterByzantineFunc adapts a function to IterByzantine.
type IterByzantineFunc = consensus.IterByzantineFunc

// RunIterativeBVC runs iterative approximate Byzantine vector consensus:
// each round every process sends its current estimate to all others and
// moves to a deterministic interior point of Gamma(received, f). The
// honest estimates' range contracts geometrically for n >= (d+2)f+1.
//
// Deprecated: use Run with Spec{Protocol: ProtocolIterative}.
func RunIterativeBVC(cfg *IterConfig) (*IterResult, error) {
	return consensus.RunIterativeBVC(context.Background(), cfg)
}

// --- Asynchronous consensus (approximate, Section 10) ---

// AsyncConfig configures an asynchronous run; see consensus.AsyncConfig.
//
// Deprecated: build a Spec instead; the deprecated Run*Async wrappers
// are the only consumers of this alias.
type AsyncConfig = consensus.AsyncConfig

// AsyncResult is the outcome of an asynchronous run.
type AsyncResult = consensus.AsyncResult

// AsyncByzantine scripts an asynchronous Byzantine process.
type AsyncByzantine = consensus.AsyncByzantine

// AsyncMode selects exact (delta = 0, n >= (d+2)f+1) or relaxed
// (input-dependent delta, n >= 3f+1) round-0 choice.
type AsyncMode = consensus.AsyncMode

// Async modes.
const (
	ModeRelaxed = consensus.ModeRelaxed
	ModeExact   = consensus.ModeExact
)

// NeverMisbehave marks an AsyncByzantine field as "never".
const NeverMisbehave = consensus.NeverMisbehave

// RunAsyncBVC runs the asynchronous approximate consensus algorithm
// (Relaxed Verified Averaging in ModeRelaxed).
//
// Deprecated: use Run with Spec{Protocol: ProtocolAsync}.
func RunAsyncBVC(cfg *AsyncConfig) (*AsyncResult, error) {
	return consensus.RunAsyncBVC(context.Background(), cfg)
}

// RunK1AsyncBVC runs 1-relaxed approximate BVC asynchronously via the
// Section 5.3 per-coordinate reduction; n >= 3f+1 suffices for every
// dimension d.
//
// Deprecated: use Run with Spec{Protocol: ProtocolK1Async}.
func RunK1AsyncBVC(cfg *AsyncConfig) (*AsyncResult, error) {
	return consensus.RunK1AsyncBVC(context.Background(), cfg)
}

// --- Validity / agreement checks ---

// AgreementError returns the maximum pairwise L-infinity distance between
// the outputs of the given process ids.
func AgreementError(outputs []Vector, ids []int) float64 {
	return consensus.AgreementError(outputs, ids)
}

// CheckExactValidity reports whether out is in the convex hull of the
// non-faulty inputs (within tol).
func CheckExactValidity(out Vector, nonFaulty *PointSet, tol float64) bool {
	return consensus.CheckExactValidity(out, nonFaulty, tol)
}

// CheckKValidity reports k-relaxed validity (Definition 7).
func CheckKValidity(out Vector, nonFaulty *PointSet, k int, tol float64) bool {
	return consensus.CheckKValidity(out, nonFaulty, k, tol)
}

// CheckDeltaValidity reports (delta,p)-relaxed validity (Definition 10).
func CheckDeltaValidity(out Vector, nonFaulty *PointSet, delta, p, tol float64) bool {
	return consensus.CheckDeltaValidity(out, nonFaulty, delta, p, tol)
}

// --- Byzantine behavior library (synchronous broadcast level) ---

// Silent returns a crash-at-start behavior.
func Silent() ByzantineBehavior { return adversary.Silent() }

// Equivocator sends a to even recipients and b to odd ones.
func Equivocator(a, b Vector) ByzantineBehavior { return adversary.Equivocator(a, b) }

// FixedVector always claims v.
func FixedVector(v Vector) ByzantineBehavior { return adversary.FixedVector(v) }

// PerRecipient sends vectors[to] to each recipient (honest otherwise).
func PerRecipient(vectors map[int]Vector) ByzantineBehavior { return adversary.PerRecipient(vectors) }

// RandomLiar sends seeded random vectors.
func RandomLiar(seed int64, d int, scale float64) ByzantineBehavior {
	return adversary.RandomLiar(seed, d, scale)
}

// --- Geometry ---

// InHull reports whether q is in the convex hull of s (exact LP test).
func InHull(q Vector, s *PointSet) bool { return geom.InHull(q, s) }

// InRelaxedHull reports membership in H_(delta,p)(S) (Definition 9).
func InRelaxedHull(q Vector, s *PointSet, delta, p float64) bool {
	return geom.InRelaxedHull(q, s, delta, p, 0)
}

// InKRelaxedHull reports membership in H_k(S) (Definition 6).
func InKRelaxedHull(q Vector, s *PointSet, k int) bool { return relax.InHullK(q, s, k) }

// DistToHull returns the Lp distance from q to conv(S) and the nearest
// hull point. p may be any value >= 1 including LInf.
func DistToHull(q Vector, s *PointSet, p float64) (float64, Vector) { return geom.DistP(q, s, p) }

// GammaPoint returns a deterministic point of Gamma(S) (the intersection
// of the hulls of all (|S|-f)-subsets), or ok=false when empty.
func GammaPoint(s *PointSet, f int) (Vector, bool) { return relax.GammaPoint(s, f) }

// DeltaStar returns delta*_p(S): the smallest delta for which
// Gamma_(delta,p)(S) is non-empty, with an attaining point. p = 1 and
// p = LInf are exact LPs; p = 2 uses the Lemma 13 closed form or the L2
// minimax solver; any other p >= 1 uses the generic (iterative) Lp
// minimax solver and returns a tight upper bound on the true value.
//
// Deprecated: use ComputeDeltaStar, which returns an error instead of
// panicking on p < 1 or an out-of-range f.
func DeltaStar(s *PointSet, f int, p float64) (float64, Vector) {
	switch {
	case p == 2:
		r := minimax.DeltaStar2(s, f)
		return r.Delta, r.Point
	case p == 1 || math.IsInf(p, 1):
		return relax.DeltaStarPoly(s, f, p)
	case p > 1:
		r := minimax.DeltaStarP(s, f, p)
		return r.Delta, r.Point
	}
	panic("relaxedbvc: DeltaStar requires p >= 1")
}

// TverbergPartition searches for a partition of s into f+1 parts with
// intersecting hulls (Theorem 7) and returns the blocks and a common
// point.
func TverbergPartition(s *PointSet, f int) (blocks [][]int, point Vector, ok bool) {
	return tverberg.Partition(s, f)
}

// --- Paper bounds (Table 1 and Theorem 14) ---

// Theorem9Bound returns min(minEdge/2, maxEdge/(n-2)) over the non-faulty
// inputs: the f = 1, n = d+1 bound of Theorem 9.
func Theorem9Bound(nonFaulty *PointSet, n int) float64 {
	return minimax.Theorem9Bound(nonFaulty, n)
}

// Theorem12Bound returns maxEdge/(d-1): the f >= 2, n = (d+1)f bound.
func Theorem12Bound(nonFaulty *PointSet, d int) float64 {
	return minimax.Theorem12Bound(nonFaulty, d)
}

// Conjecture1Bound returns maxEdge/(floor(n/f)-2) for 3f+1 <= n < (d+1)f.
func Conjecture1Bound(nonFaulty *PointSet, n, f int) float64 {
	return minimax.Conjecture1Bound(nonFaulty, n, f)
}

// HolderScale returns d^(1/2-1/p), the Theorem 14 transfer factor from
// the L2 bound to Lp (p >= 2).
func HolderScale(d int, p float64) float64 { return minimax.HolderScale(d, p) }

// --- Network-level knobs ---

// Message is one delivered point-to-point message (for trace hooks).
type Message = sched.Message

// Schedule controls asynchronous delivery order.
type Schedule = sched.Schedule

// Delivery schedules for AsyncConfig.Schedule.
func FIFOSchedule() Schedule { return sched.FIFOSchedule{} }
func LIFOSchedule() Schedule { return sched.LIFOSchedule{} }
func RandomSchedule(seed int64) Schedule {
	return &sched.RandomSchedule{Rng: rand.New(rand.NewSource(seed))}
}
func StarveSchedule(slow ...int) Schedule {
	m := make(map[int]bool, len(slow))
	for _, s := range slow {
		m[s] = true
	}
	return &sched.DelayTargetSchedule{Slow: m}
}

// LinkFaults is a seeded, replayable link-fault policy for Spec.Faults
// (per-link drop probability, bounded delay, duplication, timed
// partitions). See the sched package for the full model semantics.
type LinkFaults = sched.LinkFaults

// Link identifies one directed channel in LinkFaults.Links.
type Link = sched.Link

// LinkProfile is the per-link fault intensity of a LinkFaults policy.
type LinkProfile = sched.LinkProfile

// Partition is a timed network split in LinkFaults.Partitions.
type Partition = sched.Partition

// FaultStats counts injected fault events for one run.
type FaultStats = sched.FaultStats

// SignedByzantineBehavior scripts a Byzantine process under the signed
// (Dolev-Strong) broadcast mode of SyncConfig.SignedBroadcast.
type SignedByzantineBehavior = broadcast.DSBehavior

// SignedEquivocator builds the canonical signed-mode attack: per-
// recipient round-0 values with genuine signatures.
func SignedEquivocator(values map[int]Vector) SignedByzantineBehavior {
	return adversary.SignedEquivocator(values)
}

// TraceRecorder captures message-level transcripts; install its Hook as
// a config's Trace field and inspect the summary afterwards.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder retaining up to limit events
// (0 = default cap).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.New(limit) }
